#include "trace/features.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace kooza::trace {

std::string RequestFeatures::to_string() const {
    std::ostringstream os;
    os << "req " << request_id << ": net=" << network_bytes
       << "B cpu=" << cpu_utilization * 100.0 << "% mem=" << memory_bytes << "B/"
       << kooza::trace::to_string(memory_type) << " sto=" << storage_bytes << "B/"
       << kooza::trace::to_string(storage_type) << " lat=" << latency * 1e3 << "ms";
    return os.str();
}

void FeatureAccumulator::observe(const NetworkRecord& r) {
    auto& a = acc_[r.request_id];
    if (r.direction == NetworkRecord::Direction::kRx)
        a.rx += r.size_bytes;
    else
        a.tx += r.size_bytes;
}

void FeatureAccumulator::observe(const CpuRecord& r) {
    acc_[r.request_id].cpu_busy += r.busy_seconds;
}

void FeatureAccumulator::observe(const MemoryRecord& r) {
    auto& a = acc_[r.request_id];
    (r.type == IoType::kRead ? a.mem_read : a.mem_write) += r.size_bytes;
    if (a.first_mem_time < 0.0 || r.time < a.first_mem_time) {
        a.first_mem_time = r.time;
        a.first_bank = r.bank;
    }
}

void FeatureAccumulator::observe(const StorageRecord& r) {
    auto& a = acc_[r.request_id];
    (r.type == IoType::kRead ? a.sto_read : a.sto_write) += r.size_bytes;
    if (a.first_sto_time < 0.0 || r.time < a.first_sto_time) {
        a.first_sto_time = r.time;
        a.first_lbn = r.lbn;
    }
}

void FeatureAccumulator::observe(const RequestRecord& r) { requests_.push_back(r); }

void FeatureAccumulator::observe(const TraceSet& chunk) {
    for (const auto& r : chunk.network) observe(r);
    for (const auto& r : chunk.cpu) observe(r);
    for (const auto& r : chunk.memory) observe(r);
    for (const auto& r : chunk.storage) observe(r);
    for (const auto& r : chunk.requests) observe(r);
}

void FeatureAccumulator::merge(const FeatureAccumulator& other) {
    for (const auto& [id, b] : other.acc_) {
        auto& a = acc_[id];
        a.rx += b.rx;
        a.tx += b.tx;
        a.cpu_busy += b.cpu_busy;
        a.mem_read += b.mem_read;
        a.mem_write += b.mem_write;
        a.sto_read += b.sto_read;
        a.sto_write += b.sto_write;
        // Strict < matches the single-pass tie-break: on an exact time tie
        // the earlier slice (this) keeps its first-I/O sample.
        if (b.first_mem_time >= 0.0 &&
            (a.first_mem_time < 0.0 || b.first_mem_time < a.first_mem_time)) {
            a.first_mem_time = b.first_mem_time;
            a.first_bank = b.first_bank;
        }
        if (b.first_sto_time >= 0.0 &&
            (a.first_sto_time < 0.0 || b.first_sto_time < a.first_sto_time)) {
            a.first_sto_time = b.first_sto_time;
            a.first_lbn = b.first_lbn;
        }
    }
    requests_.insert(requests_.end(), other.requests_.begin(), other.requests_.end());
}

std::vector<RequestFeatures> FeatureAccumulator::finish() const {
    std::vector<RequestFeatures> out;
    out.reserve(requests_.size());
    for (const auto& req : requests_) {
        auto it = acc_.find(req.request_id);
        RequestFeatures f;
        f.request_id = req.request_id;
        f.arrival = req.arrival;
        f.latency = req.latency();
        if (it != acc_.end()) {
            const auto& a = it->second;
            f.network_bytes = std::max(a.rx, a.tx);
            // Per-request CPU utilization: busy core-seconds over the
            // request's end-to-end window — how the paper's 2.1% / 5.1%
            // figures are constructed.
            f.cpu_utilization = f.latency > 0.0 ? a.cpu_busy / f.latency : 0.0;
            f.memory_bytes = a.mem_read + a.mem_write;
            f.memory_type = a.mem_write > a.mem_read ? IoType::kWrite : IoType::kRead;
            f.storage_bytes = a.sto_read + a.sto_write;
            f.storage_type = a.sto_write > a.sto_read ? IoType::kWrite : IoType::kRead;
            f.cpu_busy_seconds = a.cpu_busy;
            f.first_lbn = a.first_lbn;
            f.first_bank = a.first_bank;
        }
        out.push_back(f);
    }
    std::sort(out.begin(), out.end(), [](const RequestFeatures& a, const RequestFeatures& b) {
        return a.arrival < b.arrival;
    });
    return out;
}

std::vector<RequestFeatures> extract_features(const TraceSet& ts) {
    FeatureAccumulator acc;
    acc.observe(ts);
    return acc.finish();
}

std::optional<RequestFeatures> extract_features_for(const TraceSet& ts,
                                                    std::uint64_t request_id) {
    for (const auto& f : extract_features(ts))
        if (f.request_id == request_id) return f;
    return std::nullopt;
}

#define KOOZA_COLUMN(fn, expr)                                                      \
    std::vector<double> fn(const std::vector<RequestFeatures>& fs) {                \
        std::vector<double> out;                                                    \
        out.reserve(fs.size());                                                     \
        for (const auto& f : fs) out.push_back(double(expr));                       \
        return out;                                                                 \
    }

KOOZA_COLUMN(column_network_bytes, f.network_bytes)
KOOZA_COLUMN(column_cpu_utilization, f.cpu_utilization)
KOOZA_COLUMN(column_memory_bytes, f.memory_bytes)
KOOZA_COLUMN(column_storage_bytes, f.storage_bytes)
KOOZA_COLUMN(column_latency, f.latency)
KOOZA_COLUMN(column_arrival, f.arrival)

#undef KOOZA_COLUMN

}  // namespace kooza::trace
