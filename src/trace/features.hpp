// Per-request feature extraction — the rows of the paper's Table 2.
//
// For each request id, aggregate its records across the four subsystem
// streams into one feature vector: network request size, CPU utilization,
// memory size/type, storage size/type, and end-to-end latency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/traceset.hpp"

namespace kooza::trace {

/// The Table 2 columns for one request.
struct RequestFeatures {
    std::uint64_t request_id = 0;
    double arrival = 0.0;
    std::uint64_t network_bytes = 0;  ///< user payload moved over the NIC
    double cpu_utilization = 0.0;     ///< CPU busy seconds / end-to-end latency
    std::uint64_t memory_bytes = 0;   ///< total memory traffic
    IoType memory_type = IoType::kRead;
    std::uint64_t storage_bytes = 0;  ///< total disk traffic
    IoType storage_type = IoType::kRead;
    double latency = 0.0;             ///< end-to-end seconds
    // Model-training extras (not Table 2 columns):
    double cpu_busy_seconds = 0.0;    ///< total CPU busy time
    std::uint64_t first_lbn = 0;      ///< LBN of the request's first disk I/O
    std::uint32_t first_bank = 0;     ///< bank of the request's first memory access

    [[nodiscard]] std::string to_string() const;
};

/// Extract features for every request in the trace set, sorted by arrival
/// time. Requests with no end-to-end record are skipped (they never
/// completed). Network bytes count the *payload-bearing* transfer: the
/// maximum of rx and tx totals, which is the response for reads and the
/// data for writes — matching the paper's "Request Size" column.
[[nodiscard]] std::vector<RequestFeatures> extract_features(const TraceSet& ts);

/// Streaming feature extraction: the per-request sufficient statistics
/// behind extract_features, fed one record (or one chunk) at a time.
/// Device records collapse into fixed-size per-request accumulators as
/// they arrive, so consuming a capture chunk by chunk needs O(requests)
/// memory instead of O(records) — the hook core::Trainer::train_streaming
/// uses over trace::ChunkedReader. extract_features(ts) itself is
/// implemented on top of this, so both paths produce identical rows.
class FeatureAccumulator {
public:
    void observe(const NetworkRecord& r);
    void observe(const CpuRecord& r);
    void observe(const MemoryRecord& r);
    void observe(const StorageRecord& r);
    void observe(const RequestRecord& r);
    /// All five feature-bearing streams of `chunk`, in record order.
    void observe(const TraceSet& chunk);

    /// Fold another accumulator built from a *later* slice of the same
    /// capture into this one (first-seen wins on first-I/O tie-breaks).
    void merge(const FeatureAccumulator& other);

    /// Completed-request rows, sorted by arrival — exactly what
    /// extract_features returns for the concatenation of everything
    /// observed.
    [[nodiscard]] std::vector<RequestFeatures> finish() const;

    [[nodiscard]] std::size_t requests_seen() const noexcept {
        return requests_.size();
    }

private:
    struct PerRequest {
        std::uint64_t rx = 0, tx = 0;
        double cpu_busy = 0.0;
        std::uint64_t mem_read = 0, mem_write = 0;
        std::uint64_t sto_read = 0, sto_write = 0;
        double first_sto_time = -1.0;
        std::uint64_t first_lbn = 0;
        double first_mem_time = -1.0;
        std::uint32_t first_bank = 0;
    };

    std::map<std::uint64_t, PerRequest> acc_;
    std::vector<RequestRecord> requests_;
};

/// Features of one specific request, if it completed.
[[nodiscard]] std::optional<RequestFeatures> extract_features_for(const TraceSet& ts,
                                                                  std::uint64_t request_id);

/// Column accessors for fitting/validation code.
[[nodiscard]] std::vector<double> column_network_bytes(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_cpu_utilization(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_memory_bytes(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_storage_bytes(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_latency(const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_arrival(const std::vector<RequestFeatures>& fs);

}  // namespace kooza::trace
