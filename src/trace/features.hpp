// Per-request feature extraction — the rows of the paper's Table 2.
//
// For each request id, aggregate its records across the four subsystem
// streams into one feature vector: network request size, CPU utilization,
// memory size/type, storage size/type, and end-to-end latency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/traceset.hpp"

namespace kooza::trace {

/// The Table 2 columns for one request.
struct RequestFeatures {
    std::uint64_t request_id = 0;
    double arrival = 0.0;
    std::uint64_t network_bytes = 0;  ///< user payload moved over the NIC
    double cpu_utilization = 0.0;     ///< CPU busy seconds / end-to-end latency
    std::uint64_t memory_bytes = 0;   ///< total memory traffic
    IoType memory_type = IoType::kRead;
    std::uint64_t storage_bytes = 0;  ///< total disk traffic
    IoType storage_type = IoType::kRead;
    double latency = 0.0;             ///< end-to-end seconds
    // Model-training extras (not Table 2 columns):
    double cpu_busy_seconds = 0.0;    ///< total CPU busy time
    std::uint64_t first_lbn = 0;      ///< LBN of the request's first disk I/O
    std::uint32_t first_bank = 0;     ///< bank of the request's first memory access

    [[nodiscard]] std::string to_string() const;
};

/// Extract features for every request in the trace set, sorted by arrival
/// time. Requests with no end-to-end record are skipped (they never
/// completed). Network bytes count the *payload-bearing* transfer: the
/// maximum of rx and tx totals, which is the response for reads and the
/// data for writes — matching the paper's "Request Size" column.
[[nodiscard]] std::vector<RequestFeatures> extract_features(const TraceSet& ts);

/// Features of one specific request, if it completed.
[[nodiscard]] std::optional<RequestFeatures> extract_features_for(const TraceSet& ts,
                                                                  std::uint64_t request_id);

/// Column accessors for fitting/validation code.
[[nodiscard]] std::vector<double> column_network_bytes(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_cpu_utilization(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_memory_bytes(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_storage_bytes(
    const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_latency(const std::vector<RequestFeatures>& fs);
[[nodiscard]] std::vector<double> column_arrival(const std::vector<RequestFeatures>& fs);

}  // namespace kooza::trace
