// Mechanical disk model.
//
// Service time = seek (distance-dependent over the LBN space) + rotational
// latency + transfer (size / rate). A Disk device wraps the model with an
// FCFS queue on the shared event engine and emits StorageRecords, so
// queueing delay under contention falls out naturally. This is the storage
// substrate under each GFS chunkserver and under the KOOZA replayer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "trace/records.hpp"
#include "trace/sink.hpp"

namespace kooza::hw {

/// Timing parameters of the disk mechanism (7200rpm-class defaults).
struct DiskParams {
    std::uint64_t lbn_count = 1u << 24;  ///< logical blocks
    std::uint32_t block_size = 512;      ///< bytes per LBN
    double min_seek = 0.0005;            ///< track-to-track, seconds
    double max_seek = 0.010;             ///< full-stroke, seconds
    double rpm = 7200.0;
    double transfer_rate = 120e6;        ///< sustained, bytes/second
    /// Seek distance (fraction of full stroke) below which a request is
    /// treated as sequential: no seek, no rotational delay.
    double sequential_threshold = 1e-6;
};

/// Pure timing function (no queueing, no engine): service time of one I/O
/// given the previous head position.
[[nodiscard]] double disk_service_time(const DiskParams& p, std::uint64_t prev_lbn,
                                       std::uint64_t lbn, std::uint64_t size_bytes);

/// Queued disk device.
class Disk {
public:
    /// @param sink optional trace sink; a StorageRecord per completed I/O
    Disk(sim::Engine& engine, DiskParams params, trace::Sink* sink = nullptr);

    /// Issue an I/O. `on_done` fires at completion with the total latency
    /// (queueing + service).
    void io(std::uint64_t request_id, std::uint64_t lbn, std::uint64_t size_bytes,
            trace::IoType type, std::function<void(double latency)> on_done);

    [[nodiscard]] const DiskParams& params() const noexcept { return params_; }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
    [[nodiscard]] double utilization() const noexcept { return queue_->utilization(); }
    /// Cumulative busy seconds (profiler uses deltas of this for
    /// per-interval utilization).
    [[nodiscard]] double busy_time() const noexcept { return queue_->busy_time(); }
    [[nodiscard]] std::uint64_t head_position() const noexcept { return head_; }

private:
    sim::Engine& engine_;
    DiskParams params_;
    trace::Sink* sink_;
    std::unique_ptr<sim::Resource> queue_;
    std::uint64_t head_ = 0;
    std::uint64_t completed_ = 0;
};

}  // namespace kooza::hw
