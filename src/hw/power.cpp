#include "hw/power.hpp"

#include <algorithm>
#include <stdexcept>

namespace kooza::hw {

PowerModel::PowerModel(PowerParams params) : params_(params) {
    if (params_.idle_watts < 0.0 || params_.cpu_dynamic_watts < 0.0 ||
        params_.disk_active_watts < 0.0 || params_.memory_active_watts < 0.0)
        throw std::invalid_argument("PowerModel: negative power parameter");
}

double PowerModel::power(double cpu_util, double disk_util, double memory_util) const {
    auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };
    return params_.idle_watts + clamp01(cpu_util) * params_.cpu_dynamic_watts +
           clamp01(disk_util) * params_.disk_active_watts +
           clamp01(memory_util) * params_.memory_active_watts;
}

double PowerModel::energy(std::span<const UtilizationSample> samples) const {
    if (samples.empty()) return 0.0;
    double joules = 0.0;
    double prev_time = 0.0;
    for (const auto& s : samples) {
        if (s.time < prev_time)
            throw std::invalid_argument("PowerModel::energy: samples out of order");
        joules += (s.time - prev_time) * power(s.cpu, s.disk, s.memory);
        prev_time = s.time;
    }
    return joules;
}

double PowerModel::energy(double duration, double cpu_util, double disk_util,
                          double memory_util) const {
    if (duration < 0.0)
        throw std::invalid_argument("PowerModel::energy: negative duration");
    return duration * power(cpu_util, disk_util, memory_util);
}

}  // namespace kooza::hw
