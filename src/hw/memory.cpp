#include "hw/memory.hpp"

#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::hw {

namespace {

struct MemoryMetrics {
    obs::Counter& accesses = obs::counter("hw.mem.accesses_total");
    obs::Counter& bytes = obs::counter("hw.mem.bytes_total", obs::Unit::kBytes);
};

MemoryMetrics& metrics() {
    static MemoryMetrics m;
    return m;
}

}  // namespace

Memory::Memory(sim::Engine& engine, MemoryParams params, trace::Sink* sink)
    : engine_(engine), params_(params), sink_(sink) {
    if (params_.banks == 0) throw std::invalid_argument("Memory: banks must be >= 1");
    if (!(params_.bank_bandwidth > 0.0))
        throw std::invalid_argument("Memory: bandwidth must be > 0");
    banks_.reserve(params_.banks);
    for (std::uint32_t b = 0; b < params_.banks; ++b)
        banks_.push_back(std::make_unique<sim::Resource>(engine_, 1));
}

std::uint32_t Memory::bank_of(std::uint64_t address) const noexcept {
    return std::uint32_t((address / 4096) % params_.banks);
}

void Memory::access(std::uint64_t request_id, std::uint32_t bank,
                    std::uint64_t size_bytes, trace::IoType type,
                    std::function<void(double)> on_done) {
    if (bank >= params_.banks) throw std::invalid_argument("Memory::access: bank range");
    const double issued = engine_.now();
    // Keyed at issue, emitted at completion (see sink.hpp hold protocol).
    if (sink_ != nullptr) sink_->open_hold(trace::StreamId::kMemory, issued);
    auto& res = *banks_[bank];
    res.acquire([this, &res, request_id, bank, size_bytes, type, issued,
                 on_done = std::move(on_done)]() mutable {
        const double service =
            params_.access_latency + double(size_bytes) / params_.bank_bandwidth;
        engine_.schedule_after(service, [this, &res, request_id, bank, size_bytes, type,
                                         issued, on_done = std::move(on_done)] {
            res.release();
            ++completed_;
            metrics().accesses.add();
            metrics().bytes.add(size_bytes);
            if (sink_ != nullptr) {
                trace::MemoryRecord rec;
                rec.time = issued;
                rec.request_id = request_id;
                rec.bank = bank;
                rec.size_bytes = size_bytes;
                rec.type = type;
                sink_->append(rec);
                sink_->close_hold(trace::StreamId::kMemory, issued);
            }
            if (on_done) on_done(engine_.now() - issued);
        });
    });
}

double Memory::bank_utilization(std::uint32_t bank) const {
    if (bank >= params_.banks)
        throw std::invalid_argument("Memory::bank_utilization: bank range");
    return banks_[bank]->utilization();
}

}  // namespace kooza::hw
