// Banked DRAM model.
//
// Accesses name a bank (the paper's memory-model states, Fig. 2); each
// bank is an independent FCFS queue, so bank conflicts cost time while
// accesses to different banks proceed in parallel. Latency = fixed access
// cost + bytes / per-bank bandwidth. Completed accesses emit
// MemoryRecords.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "trace/records.hpp"
#include "trace/sink.hpp"

namespace kooza::hw {

struct MemoryParams {
    std::uint32_t banks = 4;
    double access_latency = 60e-9;   ///< row activation + CAS, seconds
    double bank_bandwidth = 4e9;     ///< bytes/second per bank
};

class Memory {
public:
    Memory(sim::Engine& engine, MemoryParams params, trace::Sink* sink = nullptr);

    /// Access `size_bytes` in `bank`. `on_done` fires at completion with
    /// total latency (bank queueing + service).
    void access(std::uint64_t request_id, std::uint32_t bank, std::uint64_t size_bytes,
                trace::IoType type, std::function<void(double latency)> on_done);

    /// Bank an address maps to (simple interleave on 4 KB frames).
    [[nodiscard]] std::uint32_t bank_of(std::uint64_t address) const noexcept;

    [[nodiscard]] const MemoryParams& params() const noexcept { return params_; }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
    [[nodiscard]] double bank_utilization(std::uint32_t bank) const;

private:
    sim::Engine& engine_;
    MemoryParams params_;
    trace::Sink* sink_;
    std::vector<std::unique_ptr<sim::Resource>> banks_;
    std::uint64_t completed_ = 0;
};

}  // namespace kooza::hw
