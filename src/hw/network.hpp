// Network devices: point-to-point links and a shared-buffer switch port.
//
// A Link is a serialized pipe (bandwidth + propagation). A SwitchPort
// models the congestion point where TCP/IP incast happens: many senders
// converge on one output with a finite packet buffer; overflowing frames
// are dropped and retried after a timeout, which is exactly the latency
// collapse the paper says a multi-server KOOZA composition can replicate
// (Section 4). Completed transfers emit NetworkRecords at the receiver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "trace/records.hpp"
#include "trace/sink.hpp"

namespace kooza::hw {

struct LinkParams {
    double bandwidth = 1.25e8;   ///< bytes/second (1 Gb/s)
    double propagation = 50e-6;  ///< seconds
    std::uint32_t mtu = 1500;    ///< frame payload, bytes
};

/// Serialized point-to-point link.
class Link {
public:
    /// @param direction recorded on emitted NetworkRecords (rx at the GFS
    ///        server for client->server, tx for server->client)
    Link(sim::Engine& engine, LinkParams params,
         trace::NetworkRecord::Direction direction, trace::Sink* sink = nullptr);

    /// Move `size_bytes` across the link; `on_done` fires at the receiver
    /// with the total latency (queueing + serialization + propagation).
    void transfer(std::uint64_t request_id, std::uint64_t size_bytes,
                  std::function<void(double latency)> on_done);

    [[nodiscard]] const LinkParams& params() const noexcept { return params_; }
    [[nodiscard]] double utilization() const noexcept { return pipe_->utilization(); }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

private:
    sim::Engine& engine_;
    LinkParams params_;
    trace::NetworkRecord::Direction direction_;
    trace::Sink* sink_;
    std::unique_ptr<sim::Resource> pipe_;
    std::uint64_t completed_ = 0;
};

struct SwitchParams {
    double bandwidth = 1.25e8;     ///< output port rate, bytes/second
    double propagation = 50e-6;    ///< seconds
    std::uint32_t mtu = 1500;      ///< frame payload, bytes
    std::uint32_t buffer_frames = 64;  ///< shared output buffer
    double retry_timeout = 0.2;    ///< TCP-like retransmission timeout, s
    std::uint32_t max_retries = 16;
};

/// One congested switch output port with a finite frame buffer.
/// Transfers are chopped into MTU frames; frames arriving to a full buffer
/// are dropped and the *whole remaining tail* is retried after
/// retry_timeout (a coarse model of a TCP timeout, sufficient to reproduce
/// incast goodput collapse).
class SwitchPort {
public:
    /// @param direction recorded on emitted NetworkRecords
    SwitchPort(sim::Engine& engine, SwitchParams params,
               trace::NetworkRecord::Direction direction =
                   trace::NetworkRecord::Direction::kRx,
               trace::Sink* sink = nullptr);

    /// @param record  false for control messages (headers, acks): they
    ///        cost time on the port but are not payload traffic
    void transfer(std::uint64_t request_id, std::uint64_t size_bytes,
                  std::function<void(double latency)> on_done, bool record = true);

    [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
    [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
    [[nodiscard]] const SwitchParams& params() const noexcept { return params_; }

private:
    void send_tail(std::uint64_t request_id, std::uint64_t remaining, double started,
                   std::uint64_t total, std::uint32_t retries, bool record,
                   std::shared_ptr<std::function<void(double)>> on_done);

    sim::Engine& engine_;
    SwitchParams params_;
    trace::NetworkRecord::Direction direction_;
    trace::Sink* sink_;
    std::unique_ptr<sim::Resource> port_;
    std::uint64_t drops_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t completed_ = 0;
};

}  // namespace kooza::hw
