#include "hw/cpu.hpp"

#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::hw {

namespace {

struct CpuMetrics {
    obs::Counter& bursts = obs::counter("hw.cpu.bursts_total");
    obs::Gauge& queue_depth = obs::gauge("hw.cpu.queue_depth");
    obs::Histogram& busy_ns =
        obs::histogram("hw.cpu.busy_ns", obs::Unit::kNanoseconds);
};

CpuMetrics& metrics() {
    static CpuMetrics m;
    return m;
}

}  // namespace

Cpu::Cpu(sim::Engine& engine, CpuParams params, trace::Sink* sink)
    : engine_(engine), params_(params), sink_(sink) {
    if (params_.cores == 0) throw std::invalid_argument("Cpu: cores must be >= 1");
    if (!(params_.per_byte_cost >= 0.0))
        throw std::invalid_argument("Cpu: per_byte_cost must be >= 0");
    cores_ = std::make_unique<sim::Resource>(engine_, params_.cores);
}

double Cpu::work_for_bytes(std::uint64_t bytes) const noexcept {
    return params_.per_request_overhead + double(bytes) * params_.per_byte_cost;
}

void Cpu::execute(std::uint64_t request_id, double busy_seconds,
                  std::function<void()> on_done) {
    if (!(busy_seconds >= 0.0)) throw std::invalid_argument("Cpu::execute: negative work");
    const double issued = engine_.now();
    // Keyed at issue, emitted at completion (see sink.hpp hold protocol).
    if (sink_ != nullptr) sink_->open_hold(trace::StreamId::kCpu, issued);
    metrics().queue_depth.set(double(cores_->queue_length()));
    cores_->acquire([this, request_id, busy_seconds, issued,
                     on_done = std::move(on_done)]() mutable {
        engine_.schedule_after(busy_seconds, [this, request_id, busy_seconds, issued,
                                              on_done = std::move(on_done)] {
            cores_->release();
            ++completed_;
            metrics().bursts.add();
            metrics().busy_ns.observe_seconds(busy_seconds);
            if (sink_ != nullptr) {
                trace::CpuRecord rec;
                rec.time = issued;
                rec.request_id = request_id;
                rec.busy_seconds = busy_seconds;
                const double window = engine_.now() - issued;
                rec.utilization = window > 0.0 ? busy_seconds / window : 1.0;
                sink_->append(rec);
                sink_->close_hold(trace::StreamId::kCpu, issued);
            }
            if (on_done) on_done();
        });
    });
}

}  // namespace kooza::hw
