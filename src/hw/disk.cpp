#include "hw/disk.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::hw {

namespace {

struct DiskMetrics {
    obs::Counter& ios = obs::counter("hw.disk.io_total");
    obs::Counter& bytes = obs::counter("hw.disk.bytes_total", obs::Unit::kBytes);
    obs::Gauge& queue_depth = obs::gauge("hw.disk.queue_depth");
    obs::Histogram& service_ns =
        obs::histogram("hw.disk.service_ns", obs::Unit::kNanoseconds);
    obs::Histogram& latency_ns =
        obs::histogram("hw.disk.latency_ns", obs::Unit::kNanoseconds);
};

DiskMetrics& metrics() {
    static DiskMetrics m;
    return m;
}

}  // namespace

double disk_service_time(const DiskParams& p, std::uint64_t prev_lbn, std::uint64_t lbn,
                         std::uint64_t size_bytes) {
    if (lbn >= p.lbn_count) throw std::invalid_argument("disk_service_time: lbn range");
    const double dist =
        std::fabs(double(lbn) - double(prev_lbn)) / double(p.lbn_count);
    double t = double(size_bytes) / p.transfer_rate;
    if (dist > p.sequential_threshold) {
        // Square-root seek curve between min and max seek.
        t += p.min_seek + (p.max_seek - p.min_seek) * std::sqrt(dist);
        t += 0.5 * 60.0 / p.rpm;  // average rotational latency
    }
    return t;
}

Disk::Disk(sim::Engine& engine, DiskParams params, trace::Sink* sink)
    : engine_(engine), params_(params), sink_(sink) {
    if (params_.lbn_count == 0) throw std::invalid_argument("Disk: lbn_count 0");
    if (!(params_.transfer_rate > 0.0))
        throw std::invalid_argument("Disk: transfer_rate must be > 0");
    queue_ = std::make_unique<sim::Resource>(engine_, 1);
}

void Disk::io(std::uint64_t request_id, std::uint64_t lbn, std::uint64_t size_bytes,
              trace::IoType type, std::function<void(double)> on_done) {
    if (lbn >= params_.lbn_count) throw std::invalid_argument("Disk::io: lbn range");
    const double issued = engine_.now();
    // The record is keyed at issue but emitted at completion: hold the
    // storage stream so a streaming sink cannot flush past `issued`.
    if (sink_ != nullptr) sink_->open_hold(trace::StreamId::kStorage, issued);
    metrics().queue_depth.set(double(queue_->queue_length()));
    queue_->acquire([this, request_id, lbn, size_bytes, type, issued,
                     on_done = std::move(on_done)]() mutable {
        const double service = disk_service_time(params_, head_, lbn, size_bytes);
        metrics().service_ns.observe_seconds(service);
        head_ = lbn + size_bytes / params_.block_size;
        if (head_ >= params_.lbn_count) head_ = params_.lbn_count - 1;
        engine_.schedule_after(service, [this, request_id, lbn, size_bytes, type, issued,
                                         on_done = std::move(on_done)] {
            queue_->release();
            ++completed_;
            const double latency = engine_.now() - issued;
            auto& m = metrics();
            m.ios.add();
            m.bytes.add(size_bytes);
            m.latency_ns.observe_seconds(latency);
            if (sink_ != nullptr) {
                trace::StorageRecord rec;
                rec.time = issued;
                rec.request_id = request_id;
                rec.lbn = lbn;
                rec.size_bytes = size_bytes;
                rec.type = type;
                rec.latency = latency;
                sink_->append(rec);
                sink_->close_hold(trace::StreamId::kStorage, issued);
            }
            if (on_done) on_done(latency);
        });
    });
}

}  // namespace kooza::hw
