// CPU model: a pool of cores executing bursts of work.
//
// Work is expressed in core-seconds (the GFS layer derives it from bytes
// processed). Each completed burst emits a CpuRecord whose `utilization`
// is the burst's busy share of its own wall-clock window (busy / (queue +
// busy)); per-request utilization over the full request window is
// computed downstream by trace::extract_features.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "trace/sink.hpp"

namespace kooza::hw {

struct CpuParams {
    std::uint32_t cores = 2;
    /// Core-seconds per byte touched for data-processing work
    /// (checksum/copy-bound, ~ a few GB/s per core).
    double per_byte_cost = 1.0 / 3e9;
    /// Fixed core-seconds per RPC for protocol handling.
    double per_request_overhead = 20e-6;
};

class Cpu {
public:
    Cpu(sim::Engine& engine, CpuParams params, trace::Sink* sink = nullptr);

    /// Run a burst of `busy_seconds` of single-core work for a request.
    void execute(std::uint64_t request_id, double busy_seconds,
                 std::function<void()> on_done);

    /// Convenience: burst sized from bytes processed + per-request overhead.
    [[nodiscard]] double work_for_bytes(std::uint64_t bytes) const noexcept;

    [[nodiscard]] const CpuParams& params() const noexcept { return params_; }
    [[nodiscard]] double utilization() const noexcept { return cores_->utilization(); }
    /// Cumulative busy core-seconds (profiler uses deltas of this).
    [[nodiscard]] double busy_time() const noexcept { return cores_->busy_time(); }
    [[nodiscard]] std::uint32_t cores() const noexcept { return cores_->capacity(); }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

private:
    sim::Engine& engine_;
    CpuParams params_;
    trace::Sink* sink_;
    std::unique_ptr<sim::Resource> cores_;
    std::uint64_t completed_ = 0;
};

}  // namespace kooza::hw
