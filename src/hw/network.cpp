#include "hw/network.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::hw {

namespace {

struct NetMetrics {
    obs::Counter& transfers = obs::counter("hw.net.transfers_total");
    obs::Counter& bytes = obs::counter("hw.net.bytes_total", obs::Unit::kBytes);
    obs::Counter& drops = obs::counter("hw.net.drops_total");
    obs::Counter& timeouts = obs::counter("hw.net.timeouts_total");
};

NetMetrics& metrics() {
    static NetMetrics m;
    return m;
}

}  // namespace

Link::Link(sim::Engine& engine, LinkParams params,
           trace::NetworkRecord::Direction direction, trace::Sink* sink)
    : engine_(engine), params_(params), direction_(direction), sink_(sink) {
    if (!(params_.bandwidth > 0.0)) throw std::invalid_argument("Link: bandwidth");
    if (params_.propagation < 0.0) throw std::invalid_argument("Link: propagation");
    pipe_ = std::make_unique<sim::Resource>(engine_, 1);
}

void Link::transfer(std::uint64_t request_id, std::uint64_t size_bytes,
                    std::function<void(double)> on_done) {
    const double issued = engine_.now();
    // Keyed at issue, emitted at delivery (see sink.hpp hold protocol).
    if (sink_ != nullptr) sink_->open_hold(trace::StreamId::kNetwork, issued);
    pipe_->acquire([this, request_id, size_bytes, issued,
                    on_done = std::move(on_done)]() mutable {
        const double serialization = double(size_bytes) / params_.bandwidth;
        engine_.schedule_after(serialization, [this, request_id, size_bytes, issued,
                                               on_done = std::move(on_done)]() mutable {
            pipe_->release();
            engine_.schedule_after(params_.propagation,
                                   [this, request_id, size_bytes, issued,
                                    on_done = std::move(on_done)] {
                ++completed_;
                metrics().transfers.add();
                metrics().bytes.add(size_bytes);
                const double latency = engine_.now() - issued;
                if (sink_ != nullptr) {
                    trace::NetworkRecord rec;
                    rec.time = issued;
                    rec.request_id = request_id;
                    rec.size_bytes = size_bytes;
                    rec.direction = direction_;
                    rec.latency = latency;
                    sink_->append(rec);
                    sink_->close_hold(trace::StreamId::kNetwork, issued);
                }
                if (on_done) on_done(latency);
            });
        });
    });
}

SwitchPort::SwitchPort(sim::Engine& engine, SwitchParams params,
                       trace::NetworkRecord::Direction direction, trace::Sink* sink)
    : engine_(engine), params_(params), direction_(direction), sink_(sink) {
    if (!(params_.bandwidth > 0.0)) throw std::invalid_argument("SwitchPort: bandwidth");
    if (params_.mtu == 0) throw std::invalid_argument("SwitchPort: mtu");
    if (params_.buffer_frames == 0) throw std::invalid_argument("SwitchPort: buffer");
    port_ = std::make_unique<sim::Resource>(engine_, 1);
}

void SwitchPort::transfer(std::uint64_t request_id, std::uint64_t size_bytes,
                          std::function<void(double)> on_done, bool record) {
    auto cb = std::make_shared<std::function<void(double)>>(std::move(on_done));
    const double started = engine_.now();
    // Recorded transfers are keyed at `started` but emitted when the last
    // frame is delivered (or when retries are exhausted); hold the stream
    // until whichever emit site fires.
    if (record && sink_ != nullptr)
        sink_->open_hold(trace::StreamId::kNetwork, started);
    send_tail(request_id, size_bytes, started, size_bytes, 0, record,
              std::move(cb));
}

void SwitchPort::send_tail(std::uint64_t request_id, std::uint64_t remaining,
                           double started, std::uint64_t total, std::uint32_t retries,
                           bool record,
                           std::shared_ptr<std::function<void(double)>> on_done) {
    if (remaining == 0) {
        // Whole payload serialized; deliver after propagation.
        engine_.schedule_after(params_.propagation,
                               [this, request_id, started, total, record, on_done] {
            ++completed_;
            metrics().transfers.add();
            metrics().bytes.add(total);
            const double latency = engine_.now() - started;
            if (record && sink_ != nullptr) {
                trace::NetworkRecord rec;
                rec.time = started;
                rec.request_id = request_id;
                rec.size_bytes = total;
                rec.direction = direction_;
                rec.latency = latency;
                sink_->append(rec);
                sink_->close_hold(trace::StreamId::kNetwork, started);
            }
            if (*on_done) (*on_done)(latency);
        });
        return;
    }
    // Buffer check: waiting acquirers approximate buffered frames.
    if (port_->queue_length() >= params_.buffer_frames) {
        ++drops_;
        metrics().drops.add();
        if (retries >= params_.max_retries) {
            // Give up on further retries but still complete, counting the
            // stall; real TCP would reset — for workload purposes the
            // request finishes with a pathological latency either way.
            // The record still has to be emitted: the congested transfers
            // that exhaust their retries are exactly the tail the model
            // needs, and dropping them silently undercounted incast.
            ++timeouts_;
            metrics().timeouts.add();
            engine_.schedule_after(params_.retry_timeout,
                                   [this, request_id, started, total, record,
                                    on_done] {
                ++completed_;
                const double latency = engine_.now() - started;
                if (record && sink_ != nullptr) {
                    trace::NetworkRecord rec;
                    rec.time = started;
                    rec.request_id = request_id;
                    rec.size_bytes = total;
                    rec.direction = direction_;
                    rec.latency = latency;
                    sink_->append(rec);
                    sink_->close_hold(trace::StreamId::kNetwork, started);
                }
                if (*on_done) (*on_done)(latency);
            });
            return;
        }
        ++timeouts_;
        metrics().timeouts.add();
        engine_.schedule_after(params_.retry_timeout, [this, request_id, remaining,
                                                       started, total, retries, record,
                                                       on_done] {
            send_tail(request_id, remaining, started, total, retries + 1, record,
                      on_done);
        });
        return;
    }
    const std::uint64_t frame = std::min<std::uint64_t>(remaining, params_.mtu);
    port_->acquire([this, request_id, remaining, frame, started, total, retries, record,
                    on_done] {
        const double serialization = double(frame) / params_.bandwidth;
        engine_.schedule_after(serialization, [this, request_id, remaining, frame,
                                               started, total, retries, record,
                                               on_done] {
            port_->release();
            send_tail(request_id, remaining - frame, started, total, retries, record,
                      on_done);
        });
    });
}

}  // namespace kooza::hw
