// Server power model.
//
// The paper's Applicability section: "the fact that [in-breadth modeling]
// relies on system-parameters facilitates the advance to a performance
// and power model for the DC" (Section 3.1) and "studying these
// correlations can facilitate the development of a performance and power
// model for the datacenter" (Section 5). This is the standard
// idle + utilization-proportional server power model (non-energy-
// proportional servers burn most of their power at idle), evaluated over
// utilization samples from the machine profiler or over aggregate
// utilizations from a replay.
#pragma once

#include <span>

namespace kooza::hw {

struct PowerParams {
    double idle_watts = 120.0;         ///< chassis + fans + idle silicon
    double cpu_dynamic_watts = 90.0;   ///< full-load CPU delta
    double disk_active_watts = 8.0;    ///< per-disk active delta
    double memory_active_watts = 15.0; ///< DRAM active delta
};

/// One utilization observation (fractions in [0,1]).
struct UtilizationSample {
    double time = 0.0;
    double cpu = 0.0;
    double disk = 0.0;
    double memory = 0.0;
};

class PowerModel {
public:
    explicit PowerModel(PowerParams params = {});

    /// Instantaneous power draw at the given utilizations (watts).
    [[nodiscard]] double power(double cpu_util, double disk_util,
                               double memory_util = 0.0) const;

    /// Energy over a sampled utilization series (joules): piecewise-
    /// constant integration between consecutive samples (the first sample
    /// anchors at t=0). Requires samples ordered by time.
    [[nodiscard]] double energy(std::span<const UtilizationSample> samples) const;

    /// Energy for a window of constant average utilization (joules).
    [[nodiscard]] double energy(double duration, double cpu_util, double disk_util,
                                double memory_util = 0.0) const;

    [[nodiscard]] const PowerParams& params() const noexcept { return params_; }

private:
    PowerParams params_;
};

}  // namespace kooza::hw
