#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace kooza::stats {

std::vector<double> autocorrelation(std::span<const double> xs, std::size_t max_lag) {
    if (xs.empty()) throw std::invalid_argument("autocorrelation: empty series");
    if (max_lag >= xs.size())
        throw std::invalid_argument("autocorrelation: max_lag must be < n");
    const double m = mean(xs);
    double denom = 0.0;
    for (double x : xs) denom += (x - m) * (x - m);
    std::vector<double> acf(max_lag, 0.0);
    if (denom <= 0.0) return acf;
    for (std::size_t lag = 1; lag <= max_lag; ++lag) {
        double num = 0.0;
        for (std::size_t i = 0; i + lag < xs.size(); ++i)
            num += (xs[i] - m) * (xs[i + lag] - m);
        acf[lag - 1] = num / denom;
    }
    return acf;
}

double autocorrelation_at(std::span<const double> xs, std::size_t lag) {
    if (lag == 0) return 1.0;
    return autocorrelation(xs, lag).back();
}

namespace {
std::vector<double> window_counts(std::span<const double> arrivals, double window) {
    if (arrivals.empty()) throw std::invalid_argument("window_counts: empty arrivals");
    if (!(window > 0.0)) throw std::invalid_argument("window_counts: window must be > 0");
    std::vector<double> ts(arrivals.begin(), arrivals.end());
    std::sort(ts.begin(), ts.end());
    const double span_t = ts.back() - ts.front();
    const std::size_t n_win = std::max<std::size_t>(1, std::size_t(span_t / window) + 1);
    std::vector<double> counts(n_win, 0.0);
    for (double t : ts) {
        auto w = std::size_t((t - ts.front()) / window);
        counts[std::min(w, n_win - 1)] += 1.0;
    }
    return counts;
}
}  // namespace

double index_of_dispersion(std::span<const double> arrivals, double window) {
    auto counts = window_counts(arrivals, window);
    const double m = mean(counts);
    if (m <= 0.0) return 0.0;
    // Population variance of the counts (the IDC definition).
    double v = 0.0;
    for (double c : counts) v += (c - m) * (c - m);
    v /= double(counts.size());
    return v / m;
}

double peak_to_mean(std::span<const double> arrivals, double window) {
    auto counts = window_counts(arrivals, window);
    const double m = mean(counts);
    if (m <= 0.0) return 0.0;
    return *std::max_element(counts.begin(), counts.end()) / m;
}

double hurst_exponent(std::span<const double> xs) {
    if (xs.size() < 32) throw std::invalid_argument("hurst_exponent: need n >= 32");
    // R/S analysis: for window sizes w, average the rescaled range over
    // disjoint windows, then regress log(R/S) on log(w).
    std::vector<double> log_w, log_rs;
    for (std::size_t w = 8; w <= xs.size() / 2; w *= 2) {
        double rs_sum = 0.0;
        std::size_t rs_count = 0;
        for (std::size_t start = 0; start + w <= xs.size(); start += w) {
            std::span<const double> win = xs.subspan(start, w);
            const double m = mean(win);
            double cum = 0.0, mn = 0.0, mx = 0.0, ss = 0.0;
            for (double x : win) {
                cum += x - m;
                mn = std::min(mn, cum);
                mx = std::max(mx, cum);
                ss += (x - m) * (x - m);
            }
            const double sd = std::sqrt(ss / double(w));
            if (sd > 0.0) {
                rs_sum += (mx - mn) / sd;
                ++rs_count;
            }
        }
        if (rs_count > 0) {
            log_w.push_back(std::log(double(w)));
            log_rs.push_back(std::log(rs_sum / double(rs_count)));
        }
    }
    if (log_w.size() < 2) return 0.5;  // degenerate (constant) series
    // OLS slope.
    const double mw = mean(log_w), mr = mean(log_rs);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < log_w.size(); ++i) {
        num += (log_w[i] - mw) * (log_rs[i] - mr);
        den += (log_w[i] - mw) * (log_w[i] - mw);
    }
    return den > 0.0 ? num / den : 0.5;
}

double stationarity_drift(std::span<const double> xs, std::size_t pieces) {
    if (pieces < 2) throw std::invalid_argument("stationarity_drift: pieces must be >= 2");
    if (xs.size() < pieces)
        throw std::invalid_argument("stationarity_drift: series shorter than pieces");
    const double global = mean(xs);
    const std::size_t w = xs.size() / pieces;
    double worst = 0.0;
    for (std::size_t p = 0; p < pieces; ++p) {
        const double m = mean(xs.subspan(p * w, w));
        const double denom = std::fabs(global) > 1e-300 ? std::fabs(global) : 1.0;
        worst = std::max(worst, std::fabs(m - global) / denom);
    }
    return worst;
}

std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag, double threshold) {
    if (min_lag == 0 || min_lag > max_lag)
        throw std::invalid_argument("dominant_period: bad lag range");
    if (max_lag >= xs.size())
        throw std::invalid_argument("dominant_period: max_lag must be < n");
    auto acf = autocorrelation(xs, max_lag);
    std::size_t best = 0;
    double best_val = threshold;
    for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
        if (acf[lag - 1] > best_val) {
            best_val = acf[lag - 1];
            best = lag;
        }
    }
    return best;
}

}  // namespace kooza::stats
