#include "stats/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace kooza::stats {

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
    return s;
}

constexpr double kLog2Pi = 1.8378770664093453;  // ln(2*pi)
constexpr double kVarFloor = 1e-9;

}  // namespace

KMeansResult kmeans(const Matrix& data, std::size_t k, sim::Rng& rng,
                    std::size_t max_iter) {
    const std::size_t n = data.rows(), d = data.cols();
    if (k == 0) throw std::invalid_argument("kmeans: k must be >= 1");
    if (k > n) throw std::invalid_argument("kmeans: k exceeds observations");

    // k-means++ seeding.
    Matrix centroids(k, d);
    std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
    std::size_t first = std::size_t(rng.uniform_int(0, std::int64_t(n) - 1));
    for (std::size_t c = 0; c < d; ++c) centroids.at(0, c) = data.at(first, c);
    for (std::size_t j = 1; j < k; ++j) {
        for (std::size_t i = 0; i < n; ++i)
            min_d2[i] = std::min(min_d2[i], sq_dist(data.row(i), centroids.row(j - 1)));
        double total = 0.0;
        for (double v : min_d2) total += v;
        std::size_t pick = 0;
        if (total > 0.0) {
            double r = rng.uniform(0.0, total), acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                acc += min_d2[i];
                if (r < acc) {
                    pick = i;
                    break;
                }
            }
        } else {
            pick = std::size_t(rng.uniform_int(0, std::int64_t(n) - 1));
        }
        for (std::size_t c = 0; c < d; ++c) centroids.at(j, c) = data.at(pick, c);
    }

    KMeansResult out{std::move(centroids), std::vector<std::size_t>(n, 0), 0.0, 0};
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        bool changed = false;
        // Assign.
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (std::size_t j = 0; j < k; ++j) {
                const double dist = sq_dist(data.row(i), out.centroids.row(j));
                if (dist < best_d) {
                    best_d = dist;
                    best = j;
                }
            }
            if (out.labels[i] != best) {
                out.labels[i] = best;
                changed = true;
            }
        }
        // Update.
        Matrix sums(k, d);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[out.labels[i]];
            for (std::size_t c = 0; c < d; ++c)
                sums.at(out.labels[i], c) += data.at(i, c);
        }
        for (std::size_t j = 0; j < k; ++j) {
            if (counts[j] == 0) continue;  // keep stale centroid for empty cluster
            for (std::size_t c = 0; c < d; ++c)
                out.centroids.at(j, c) = sums.at(j, c) / double(counts[j]);
        }
        out.iterations = iter + 1;
        if (!changed) break;
    }
    out.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        out.inertia += sq_dist(data.row(i), out.centroids.row(out.labels[i]));
    return out;
}

GaussianMixture::GaussianMixture(const Matrix& data, std::size_t k, sim::Rng& rng,
                                 std::size_t max_iter, double tol)
    : dims_(data.cols()) {
    const std::size_t n = data.rows();
    if (k == 0) throw std::invalid_argument("GaussianMixture: k must be >= 1");
    if (k > n) throw std::invalid_argument("GaussianMixture: k exceeds observations");

    // Initialize from k-means.
    auto km = kmeans(data, k, rng);
    weights_.assign(k, 1.0 / double(k));
    means_.assign(k, std::vector<double>(dims_, 0.0));
    vars_.assign(k, std::vector<double>(dims_, 1.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) ++counts[km.labels[i]];
    for (std::size_t j = 0; j < k; ++j) {
        for (std::size_t c = 0; c < dims_; ++c) means_[j][c] = km.centroids.at(j, c);
        weights_[j] = std::max(1.0, double(counts[j])) / double(n);
    }
    // Initial variances: within-cluster spread (floored).
    for (std::size_t j = 0; j < k; ++j) std::fill(vars_[j].begin(), vars_[j].end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto j = km.labels[i];
        for (std::size_t c = 0; c < dims_; ++c) {
            const double dx = data.at(i, c) - means_[j][c];
            vars_[j][c] += dx * dx;
        }
    }
    for (std::size_t j = 0; j < k; ++j)
        for (std::size_t c = 0; c < dims_; ++c)
            vars_[j][c] = std::max(vars_[j][c] / std::max<double>(1.0, double(counts[j])),
                                   kVarFloor);
    // Normalize weights.
    double wsum = 0.0;
    for (double w : weights_) wsum += w;
    for (auto& w : weights_) w /= wsum;

    // EM.
    std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        // E-step (log-sum-exp for stability).
        double ll = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double mx = -std::numeric_limits<double>::infinity();
            std::vector<double> lp(k);
            for (std::size_t j = 0; j < k; ++j) {
                double s = std::log(weights_[j]);
                for (std::size_t c = 0; c < dims_; ++c) {
                    const double dx = data.at(i, c) - means_[j][c];
                    s += -0.5 * (kLog2Pi + std::log(vars_[j][c]) + dx * dx / vars_[j][c]);
                }
                lp[j] = s;
                mx = std::max(mx, s);
            }
            double denom = 0.0;
            for (std::size_t j = 0; j < k; ++j) denom += std::exp(lp[j] - mx);
            ll += mx + std::log(denom);
            for (std::size_t j = 0; j < k; ++j)
                resp[i][j] = std::exp(lp[j] - mx) / denom;
        }
        // M-step.
        for (std::size_t j = 0; j < k; ++j) {
            double nj = 0.0;
            for (std::size_t i = 0; i < n; ++i) nj += resp[i][j];
            nj = std::max(nj, 1e-12);
            weights_[j] = nj / double(n);
            for (std::size_t c = 0; c < dims_; ++c) {
                double m = 0.0;
                for (std::size_t i = 0; i < n; ++i) m += resp[i][j] * data.at(i, c);
                means_[j][c] = m / nj;
            }
            for (std::size_t c = 0; c < dims_; ++c) {
                double v = 0.0;
                for (std::size_t i = 0; i < n; ++i) {
                    const double dx = data.at(i, c) - means_[j][c];
                    v += resp[i][j] * dx * dx;
                }
                vars_[j][c] = std::max(v / nj, kVarFloor);
            }
        }
        loglik_ = ll;
        if (ll - prev_ll < tol && iter > 0) break;
        prev_ll = ll;
    }
}

std::size_t GaussianMixture::parameter_count() const noexcept {
    // weights (k-1) + means (k*d) + diagonal variances (k*d)
    return (weights_.size() - 1) + 2 * weights_.size() * dims_;
}

double GaussianMixture::bic(std::size_t n_observations) const {
    if (n_observations == 0) throw std::invalid_argument("bic: n must be > 0");
    return -2.0 * loglik_ + double(parameter_count()) * std::log(double(n_observations));
}

double GaussianMixture::log_pdf(std::span<const double> x) const {
    if (x.size() != dims_) throw std::invalid_argument("GaussianMixture::log_pdf: dim");
    double mx = -std::numeric_limits<double>::infinity();
    std::vector<double> lp(weights_.size());
    for (std::size_t j = 0; j < weights_.size(); ++j) {
        double s = std::log(weights_[j]);
        for (std::size_t c = 0; c < dims_; ++c) {
            const double dx = x[c] - means_[j][c];
            s += -0.5 * (kLog2Pi + std::log(vars_[j][c]) + dx * dx / vars_[j][c]);
        }
        lp[j] = s;
        mx = std::max(mx, s);
    }
    double denom = 0.0;
    for (double v : lp) denom += std::exp(v - mx);
    return mx + std::log(denom);
}

std::size_t GaussianMixture::classify(std::span<const double> x) const {
    if (x.size() != dims_) throw std::invalid_argument("GaussianMixture::classify: dim");
    std::size_t best = 0;
    double best_lp = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < weights_.size(); ++j) {
        double s = std::log(weights_[j]);
        for (std::size_t c = 0; c < dims_; ++c) {
            const double dx = x[c] - means_[j][c];
            s += -0.5 * (kLog2Pi + std::log(vars_[j][c]) + dx * dx / vars_[j][c]);
        }
        if (s > best_lp) {
            best_lp = s;
            best = j;
        }
    }
    return best;
}

std::vector<double> GaussianMixture::sample(sim::Rng& rng) const {
    const std::size_t j = rng.weighted_index(weights_);
    std::vector<double> x(dims_);
    for (std::size_t c = 0; c < dims_; ++c)
        x[c] = rng.normal(means_[j][c], std::sqrt(vars_[j][c]));
    return x;
}

std::size_t select_components(const Matrix& data, std::size_t max_k, sim::Rng& rng) {
    if (max_k == 0) throw std::invalid_argument("select_components: max_k must be >= 1");
    std::size_t best_k = 1;
    double best_bic = std::numeric_limits<double>::infinity();
    for (std::size_t k = 1; k <= std::min(max_k, data.rows()); ++k) {
        GaussianMixture gmm(data, k, rng);
        const double b = gmm.bic(data.rows());
        if (b < best_bic) {
            best_bic = b;
            best_k = k;
        }
    }
    return best_k;
}

}  // namespace kooza::stats
