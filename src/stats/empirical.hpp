// Empirical (sample-backed) distribution.
//
// Markov states carry per-state feature distributions; when no parametric
// family fits well (KS distance above threshold) the trainer falls back to
// the empirical distribution of the observed values.
#pragma once

#include <span>
#include <vector>

#include "stats/distributions.hpp"

namespace kooza::stats {

/// Distribution backed by a sorted sample. cdf() is the step ECDF;
/// sample() draws with smoothed inverse-transform (linear interpolation
/// between order statistics) so generated values are not restricted to the
/// exact observed set unless the sample is a single point.
class Empirical final : public Distribution {
public:
    explicit Empirical(std::span<const double> xs);

    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] double variance() const override;
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "empirical"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Empirical>(*this);
    }

    [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
    [[nodiscard]] const std::vector<double>& sorted() const noexcept { return xs_; }

private:
    std::vector<double> xs_;  // sorted ascending
};

}  // namespace kooza::stats
