#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "stats/special.hpp"

namespace kooza::stats {

namespace {
std::string fmt(double x) {
    std::ostringstream os;
    os << x;
    return os.str();
}
}  // namespace

double Distribution::quantile(double p) const {
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("Distribution::quantile: p must be in (0,1)");
    // Find an upper bracket by doubling, then bisect.
    double lo = 0.0, hi = 1.0;
    while (cdf(hi) < p && hi < 1e18) hi *= 2.0;
    while (cdf(lo) > p && lo > -1e18) lo = lo == 0.0 ? -1.0 : lo * 2.0;
    return quantile_by_bisection(p, lo, hi);
}

double Distribution::quantile_by_bisection(double p, double lo, double hi) const {
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi))) break;
    }
    return 0.5 * (lo + hi);
}

std::string Deterministic::describe() const {
    return "deterministic(value=" + fmt(value_) + ")";
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(hi > lo)) throw std::invalid_argument("Uniform: hi must exceed lo");
}
double Uniform::cdf(double x) const {
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    return (x - lo_) / (hi_ - lo_);
}
double Uniform::quantile(double p) const { return lo_ + p * (hi_ - lo_); }
double Uniform::sample(sim::Rng& rng) const { return rng.uniform(lo_, hi_); }
std::string Uniform::describe() const {
    return "uniform(lo=" + fmt(lo_) + ", hi=" + fmt(hi_) + ")";
}

Exponential::Exponential(double lambda) : lambda_(lambda) {
    if (!(lambda > 0.0)) throw std::invalid_argument("Exponential: lambda must be > 0");
}
double Exponential::cdf(double x) const {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}
double Exponential::quantile(double p) const { return -std::log1p(-p) / lambda_; }
double Exponential::sample(sim::Rng& rng) const { return rng.exponential(lambda_); }
std::string Exponential::describe() const {
    return "exponential(lambda=" + fmt(lambda_) + ")";
}

Normal::Normal(double mean, double stddev) : mean_(mean), sd_(stddev) {
    if (!(stddev > 0.0)) throw std::invalid_argument("Normal: stddev must be > 0");
}
double Normal::cdf(double x) const { return normal_cdf((x - mean_) / sd_); }
double Normal::quantile(double p) const { return mean_ + sd_ * normal_quantile(p); }
double Normal::sample(sim::Rng& rng) const { return rng.normal(mean_, sd_); }
std::string Normal::describe() const {
    return "normal(mean=" + fmt(mean_) + ", sd=" + fmt(sd_) + ")";
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    if (!(sigma > 0.0)) throw std::invalid_argument("LogNormal: sigma must be > 0");
}
double LogNormal::cdf(double x) const {
    return x <= 0.0 ? 0.0 : normal_cdf((std::log(x) - mu_) / sigma_);
}
double LogNormal::quantile(double p) const {
    return std::exp(mu_ + sigma_ * normal_quantile(p));
}
double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }
double LogNormal::variance() const {
    const double s2 = sigma_ * sigma_;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}
double LogNormal::sample(sim::Rng& rng) const { return rng.lognormal(mu_, sigma_); }
std::string LogNormal::describe() const {
    return "lognormal(mu=" + fmt(mu_) + ", sigma=" + fmt(sigma_) + ")";
}

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
    if (!(xm > 0.0)) throw std::invalid_argument("Pareto: xm must be > 0");
    if (!(alpha > 0.0)) throw std::invalid_argument("Pareto: alpha must be > 0");
}
double Pareto::cdf(double x) const {
    return x <= xm_ ? 0.0 : 1.0 - std::pow(xm_ / x, alpha_);
}
double Pareto::quantile(double p) const { return xm_ / std::pow(1.0 - p, 1.0 / alpha_); }
double Pareto::mean() const {
    return alpha_ > 1.0 ? alpha_ * xm_ / (alpha_ - 1.0)
                        : std::numeric_limits<double>::infinity();
}
double Pareto::variance() const {
    if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
    return xm_ * xm_ * alpha_ / ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}
double Pareto::sample(sim::Rng& rng) const { return rng.pareto(xm_, alpha_); }
std::string Pareto::describe() const {
    return "pareto(xm=" + fmt(xm_) + ", alpha=" + fmt(alpha_) + ")";
}

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
    if (!(shape > 0.0)) throw std::invalid_argument("Weibull: shape must be > 0");
    if (!(scale > 0.0)) throw std::invalid_argument("Weibull: scale must be > 0");
}
double Weibull::cdf(double x) const {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(x / scale_, shape_));
}
double Weibull::quantile(double p) const {
    return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}
double Weibull::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }
double Weibull::variance() const {
    const double g1 = std::tgamma(1.0 + 1.0 / shape_);
    const double g2 = std::tgamma(1.0 + 2.0 / shape_);
    return scale_ * scale_ * (g2 - g1 * g1);
}
double Weibull::sample(sim::Rng& rng) const { return rng.weibull(shape_, scale_); }
std::string Weibull::describe() const {
    return "weibull(shape=" + fmt(shape_) + ", scale=" + fmt(scale_) + ")";
}

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
    if (!(shape > 0.0)) throw std::invalid_argument("Gamma: shape must be > 0");
    if (!(scale > 0.0)) throw std::invalid_argument("Gamma: scale must be > 0");
}
double Gamma::cdf(double x) const { return x <= 0.0 ? 0.0 : gamma_p(shape_, x / scale_); }
double Gamma::quantile(double p) const {
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("Gamma::quantile: p must be in (0,1)");
    double hi = mean() + 10.0 * std::sqrt(variance()) + 1.0;
    while (cdf(hi) < p && hi < 1e18) hi *= 2.0;
    return quantile_by_bisection(p, 0.0, hi);
}
double Gamma::sample(sim::Rng& rng) const {
    return std::gamma_distribution<double>(shape_, scale_)(rng.engine());
}
std::string Gamma::describe() const {
    return "gamma(shape=" + fmt(shape_) + ", scale=" + fmt(scale_) + ")";
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
    if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
    if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(double(i + 1), s);
        cdf_[i] = acc;
    }
    for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(sim::Rng& rng) const {
    const double u = rng.uniform(0.0, 1.0);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return std::size_t(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
    if (i >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace kooza::stats
