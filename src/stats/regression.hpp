// Linear regression (OLS), used for the analytical throughput/latency
// predictors the survey covers (Patwardhan '04, Gulati '09) and as one of
// the paper's suggested dimensionality-reduction tools.
#pragma once

#include <span>
#include <vector>

#include "stats/matrix.hpp"

namespace kooza::stats {

/// Simple y = a + b x regression.
struct SimpleRegression {
    double intercept = 0.0;
    double slope = 0.0;
    double r_squared = 0.0;

    [[nodiscard]] double predict(double x) const noexcept {
        return intercept + slope * x;
    }
};

/// Fit y = a + b x by least squares. Throws on length mismatch, n < 2, or
/// zero variance in x.
[[nodiscard]] SimpleRegression fit_simple(std::span<const double> xs,
                                          std::span<const double> ys);

/// Multiple linear regression y = b0 + b1 x1 + ... via the normal
/// equations, with optional scale-invariant ridge regularization.
class LinearModel {
public:
    /// `data`: rows = observations, cols = predictors; `ys`: responses.
    /// `ridge` adds ridge * diag(X'X) to the normal equations (intercept
    /// excluded) — use a small value (e.g. 1e-6) when predictors may be
    /// collinear; 0 gives exact least squares.
    LinearModel(const Matrix& data, std::span<const double> ys, double ridge = 0.0);

    /// Coefficients [b0, b1, ..., bd] (b0 is the intercept).
    [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
        return beta_;
    }
    [[nodiscard]] double r_squared() const noexcept { return r2_; }
    [[nodiscard]] double predict(std::span<const double> x) const;

private:
    std::vector<double> beta_;
    double r2_ = 0.0;
};

}  // namespace kooza::stats
