// Parameter estimation for the distribution families in distributions.hpp,
// plus model selection by Kolmogorov-Smirnov distance ("distribution
// fitting through the KS test", Feitelson '02 as surveyed in the paper).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stats/distributions.hpp"

namespace kooza::stats {

/// A fitted distribution with its goodness-of-fit score.
struct Fit {
    std::unique_ptr<Distribution> dist;
    double ks = 1.0;  ///< KS distance of the sample to `dist`
    [[nodiscard]] bool valid() const noexcept { return dist != nullptr; }
};

/// Families fit_best may try.
enum class Family {
    kDeterministic,
    kUniform,
    kExponential,
    kNormal,
    kLogNormal,
    kPareto,
    kWeibull,
    kGamma,
};

[[nodiscard]] std::string family_name(Family f);

/// MLE: lambda = 1/mean. Requires positive mean.
[[nodiscard]] std::unique_ptr<Exponential> fit_exponential(std::span<const double> xs);

/// MLE: sample mean / stddev. Requires at least two distinct values.
[[nodiscard]] std::unique_ptr<Normal> fit_normal(std::span<const double> xs);

/// MLE on logs. Requires strictly positive data.
[[nodiscard]] std::unique_ptr<LogNormal> fit_lognormal(std::span<const double> xs);

/// MLE: xm = min(x), alpha = n / sum(log(x/xm)). Requires positive data.
[[nodiscard]] std::unique_ptr<Pareto> fit_pareto(std::span<const double> xs);

/// MLE via Newton iteration on the shape. Requires positive data.
[[nodiscard]] std::unique_ptr<Weibull> fit_weibull(std::span<const double> xs);

/// Method of moments: shape = mean^2/var, scale = var/mean.
[[nodiscard]] std::unique_ptr<Gamma> fit_gamma(std::span<const double> xs);

/// Min/max with a small margin so observed extremes get nonzero density.
[[nodiscard]] std::unique_ptr<Uniform> fit_uniform(std::span<const double> xs);

/// Fit each candidate family (skipping ones whose preconditions the data
/// violates), score by KS distance, return them sorted best-first.
/// A Deterministic fit is returned alone if the sample is constant.
[[nodiscard]] std::vector<Fit> fit_all(std::span<const double> xs,
                                       std::span<const Family> families);

/// Convenience: best single fit across the default family set
/// (exponential, normal, lognormal, pareto, weibull, gamma, uniform).
[[nodiscard]] Fit fit_best(std::span<const double> xs);

/// Like fit_best but falls back to an Empirical distribution when the best
/// parametric KS distance exceeds `ks_threshold`.
[[nodiscard]] std::unique_ptr<Distribution> fit_or_empirical(
    std::span<const double> xs, double ks_threshold = 0.08);

}  // namespace kooza::stats
