#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace kooza::stats {

double mean(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / double(xs.size());
}

double variance(std::span<const double> xs) noexcept {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return s / double(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> s(xs.begin(), xs.end());
    std::sort(s.begin(), s.end());
    if (s.size() == 1) return s[0];
    const double pos = q * double(s.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = pos - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
    Summary out;
    out.count = xs.size();
    if (xs.empty()) return out;
    out.mean = mean(xs);
    out.variance = variance(xs);
    out.stddev = std::sqrt(out.variance);
    if (xs.size() >= 3 && out.stddev > 0.0) {
        double m3 = 0.0;
        for (double x : xs) m3 += std::pow(x - out.mean, 3.0);
        m3 /= double(xs.size());
        out.skewness = m3 / std::pow(out.stddev, 3.0);
    }
    std::vector<double> s(xs.begin(), xs.end());
    std::sort(s.begin(), s.end());
    out.min = s.front();
    out.max = s.back();
    auto interp = [&](double q) {
        const double pos = q * double(s.size() - 1);
        const std::size_t lo = std::size_t(pos);
        const std::size_t hi = std::min(lo + 1, s.size() - 1);
        const double frac = pos - double(lo);
        return s[lo] * (1.0 - frac) + s[hi] * frac;
    };
    out.median = interp(0.5);
    out.p25 = interp(0.25);
    out.p75 = interp(0.75);
    out.p95 = interp(0.95);
    out.p99 = interp(0.99);
    return out;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size())
        throw std::invalid_argument("correlation: length mismatch");
    if (xs.size() < 2) return 0.0;
    const double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

Variation variation(double measured, double baseline) noexcept {
    Variation v;
    if (baseline == 0.0) {
        // The old code returned |measured| * 100 here — a 16 KB synthetic
        // size against a 0-byte original printed as 1,638,400%. There is
        // no meaningful relative deviation from zero, so report the
        // absolute difference in the quantity's own unit instead.
        if (measured == 0.0) return v;
        v.value = std::abs(measured);
        v.absolute = true;
        return v;
    }
    v.value = std::abs(measured - baseline) / std::abs(baseline) * 100.0;
    return v;
}

double variation_pct(double measured, double baseline) noexcept {
    return variation(measured, baseline).value;
}

std::string Summary::to_string() const {
    std::ostringstream os;
    os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
       << " p50=" << median << " p95=" << p95 << " p99=" << p99 << " max=" << max;
    return os.str();
}

}  // namespace kooza::stats
