// Clustering: k-means and Gaussian-mixture EM with BIC model selection.
//
// Li '10 (surveyed by the paper) models grid workloads with "Model-Based
// Clustering" — fitting a Gaussian mixture per feature space and choosing
// the component count by an information criterion. GaussianMixture +
// select_components reproduce that step; k-means provides initialization
// and a cheaper alternative.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.hpp"
#include "stats/matrix.hpp"

namespace kooza::stats {

/// k-means result.
struct KMeansResult {
    Matrix centroids;                   ///< k x d
    std::vector<std::size_t> labels;    ///< per-observation cluster index
    double inertia = 0.0;               ///< sum of squared distances to centroids
    std::size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. Throws if k == 0 or
/// k > number of observations.
[[nodiscard]] KMeansResult kmeans(const Matrix& data, std::size_t k, sim::Rng& rng,
                                  std::size_t max_iter = 100);

/// Diagonal-covariance Gaussian mixture fit by EM.
class GaussianMixture {
public:
    /// Fit `k` components to `data` (rows = observations). Initializes from
    /// k-means, then runs EM until the log-likelihood improvement drops
    /// below `tol` or `max_iter` is reached.
    GaussianMixture(const Matrix& data, std::size_t k, sim::Rng& rng,
                    std::size_t max_iter = 200, double tol = 1e-6);

    [[nodiscard]] std::size_t components() const noexcept { return weights_.size(); }
    [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
    [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }
    [[nodiscard]] const std::vector<std::vector<double>>& means() const noexcept {
        return means_;
    }
    [[nodiscard]] const std::vector<std::vector<double>>& variances() const noexcept {
        return vars_;
    }

    /// Total log-likelihood of the training data under the fitted model.
    [[nodiscard]] double log_likelihood() const noexcept { return loglik_; }

    /// Number of free parameters (for information criteria).
    [[nodiscard]] std::size_t parameter_count() const noexcept;

    /// Bayesian information criterion: -2 ln L + params ln n (lower = better).
    [[nodiscard]] double bic(std::size_t n_observations) const;

    /// Log density of one observation.
    [[nodiscard]] double log_pdf(std::span<const double> x) const;

    /// Most likely component for an observation.
    [[nodiscard]] std::size_t classify(std::span<const double> x) const;

    /// Draw an observation from the mixture.
    [[nodiscard]] std::vector<double> sample(sim::Rng& rng) const;

private:
    std::size_t dims_ = 0;
    std::vector<double> weights_;
    std::vector<std::vector<double>> means_;
    std::vector<std::vector<double>> vars_;  ///< diagonal covariances
    double loglik_ = 0.0;
};

/// Fit mixtures with 1..max_k components and return the k minimizing BIC —
/// the model-based-clustering selection rule.
[[nodiscard]] std::size_t select_components(const Matrix& data, std::size_t max_k,
                                            sim::Rng& rng);

}  // namespace kooza::stats
