#include "stats/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace kooza::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (rows == 0 || cols == 0) throw std::invalid_argument("Matrix: zero dimension");
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
    if (rows.empty() || rows.front().empty())
        throw std::invalid_argument("Matrix::from_rows: empty data");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            throw std::invalid_argument("Matrix::from_rows: ragged rows");
        for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("Matrix::row");
    return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
    if (c >= cols_) throw std::out_of_range("Matrix::col");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
    return out;
}

Matrix Matrix::transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
    return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
    if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = at(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out.at(r, c) += a * other.at(k, c);
        }
    return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
    if (v.size() != cols_) throw std::invalid_argument("Matrix::multiply: vector size");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out[r] += at(r, c) * v[c];
    return out;
}

std::vector<double> Matrix::solve(Matrix a, std::vector<double> b) {
    if (a.rows_ != a.cols_) throw std::invalid_argument("Matrix::solve: non-square");
    if (b.size() != a.rows_) throw std::invalid_argument("Matrix::solve: rhs size");
    const std::size_t n = a.rows_;
    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot.
        std::size_t piv = k;
        for (std::size_t r = k + 1; r < n; ++r)
            if (std::fabs(a.at(r, k)) > std::fabs(a.at(piv, k))) piv = r;
        if (std::fabs(a.at(piv, k)) < 1e-12)
            throw std::runtime_error("Matrix::solve: singular matrix");
        if (piv != k) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(piv, c));
            std::swap(b[k], b[piv]);
        }
        for (std::size_t r = k + 1; r < n; ++r) {
            const double f = a.at(r, k) / a.at(k, k);
            if (f == 0.0) continue;
            for (std::size_t c = k; c < n; ++c) a.at(r, c) -= f * a.at(k, c);
            b[r] -= f * b[k];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double s = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) s -= a.at(ri, c) * x[c];
        x[ri] = s / a.at(ri, ri);
    }
    return x;
}

double Matrix::determinant() const {
    if (rows_ != cols_) throw std::invalid_argument("Matrix::determinant: non-square");
    Matrix a = *this;
    const std::size_t n = rows_;
    double det = 1.0;
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t piv = k;
        for (std::size_t r = k + 1; r < n; ++r)
            if (std::fabs(a.at(r, k)) > std::fabs(a.at(piv, k))) piv = r;
        if (std::fabs(a.at(piv, k)) < 1e-300) return 0.0;
        if (piv != k) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(piv, c));
            det = -det;
        }
        det *= a.at(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double f = a.at(r, k) / a.at(k, k);
            for (std::size_t c = k; c < n; ++c) a.at(r, c) -= f * a.at(k, c);
        }
    }
    return det;
}

Matrix Matrix::inverse() const {
    if (rows_ != cols_) throw std::invalid_argument("Matrix::inverse: non-square");
    const std::size_t n = rows_;
    Matrix a = *this;
    Matrix inv = Matrix::identity(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t piv = k;
        for (std::size_t r = k + 1; r < n; ++r)
            if (std::fabs(a.at(r, k)) > std::fabs(a.at(piv, k))) piv = r;
        if (std::fabs(a.at(piv, k)) < 1e-12)
            throw std::runtime_error("Matrix::inverse: singular matrix");
        if (piv != k)
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(a.at(k, c), a.at(piv, c));
                std::swap(inv.at(k, c), inv.at(piv, c));
            }
        const double d = a.at(k, k);
        for (std::size_t c = 0; c < n; ++c) {
            a.at(k, c) /= d;
            inv.at(k, c) /= d;
        }
        for (std::size_t r = 0; r < n; ++r) {
            if (r == k) continue;
            const double f = a.at(r, k);
            if (f == 0.0) continue;
            for (std::size_t c = 0; c < n; ++c) {
                a.at(r, c) -= f * a.at(k, c);
                inv.at(r, c) -= f * inv.at(k, c);
            }
        }
    }
    return inv;
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) os << (c ? " " : "") << at(r, c);
        os << "\n";
    }
    return os.str();
}

std::vector<double> column_means(const Matrix& data) {
    std::vector<double> m(data.cols(), 0.0);
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c) m[c] += data.at(r, c);
    for (auto& x : m) x /= double(data.rows());
    return m;
}

Matrix covariance_matrix(const Matrix& data) {
    if (data.rows() < 2)
        throw std::invalid_argument("covariance_matrix: need >= 2 observations");
    const auto mu = column_means(data);
    Matrix cov(data.cols(), data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t i = 0; i < data.cols(); ++i) {
            const double di = data.at(r, i) - mu[i];
            for (std::size_t j = i; j < data.cols(); ++j)
                cov.at(i, j) += di * (data.at(r, j) - mu[j]);
        }
    const double norm = 1.0 / double(data.rows() - 1);
    for (std::size_t i = 0; i < data.cols(); ++i)
        for (std::size_t j = i; j < data.cols(); ++j) {
            cov.at(i, j) *= norm;
            cov.at(j, i) = cov.at(i, j);
        }
    return cov;
}

EigenResult symmetric_eigen(const Matrix& sym, int max_sweeps) {
    if (sym.rows() != sym.cols())
        throw std::invalid_argument("symmetric_eigen: non-square");
    const std::size_t n = sym.rows();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (std::fabs(sym.at(i, j) - sym.at(j, i)) >
                1e-9 * std::max(1.0, std::fabs(sym.at(i, j))))
                throw std::invalid_argument("symmetric_eigen: matrix not symmetric");

    Matrix a = sym;
    Matrix v = Matrix::identity(n);
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) off += a.at(i, j) * a.at(i, j);
        if (off < 1e-22) break;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::fabs(apq) < 1e-300) continue;
                const double theta = (a.at(q, q) - a.at(p, p)) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a.at(k, p), akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a.at(p, k), aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p), vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
    }
    // Sort eigenpairs descending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return a.at(i, i) > a.at(j, j); });
    EigenResult out{std::vector<double>(n), Matrix(n, n)};
    for (std::size_t c = 0; c < n; ++c) {
        out.values[c] = a.at(order[c], order[c]);
        for (std::size_t r = 0; r < n; ++r) out.vectors.at(r, c) = v.at(r, order[c]);
    }
    return out;
}

}  // namespace kooza::stats
