#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace kooza::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
    if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
    counts_.assign(bins, 0);
}

std::size_t Histogram::bin_of(double x) const noexcept {
    if (x <= lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    const double frac = (x - lo_) / (hi_ - lo_);
    auto bin = std::size_t(frac * double(counts_.size()));
    return std::min(bin, counts_.size() - 1);
}

void Histogram::add(double x) noexcept {
    ++counts_[bin_of(x)];
    ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
    for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
    const double w = (hi_ - lo_) / double(counts_.size());
    return lo_ + (double(bin) + 0.5) * w;
}

std::vector<double> Histogram::frequencies() const {
    std::vector<double> f(counts_.size(), 0.0);
    if (total_ == 0) return f;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        f[i] = double(counts_[i]) / double(total_);
    return f;
}

std::string Histogram::render(std::size_t width) const {
    std::uint64_t peak = 0;
    for (auto c : counts_) peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t len =
            peak == 0 ? 0 : std::size_t(double(counts_[i]) / double(peak) * double(width));
        os << bin_center(i) << "\t" << counts_[i] << "\t" << std::string(len, '#') << "\n";
    }
    return os.str();
}

void LogHistogram::add(double x) {
    if (!(x > 0.0)) throw std::invalid_argument("LogHistogram::add: requires x > 0");
    ++bins_[int(std::floor(std::log2(x)))];
    ++total_;
}

std::string LogHistogram::render(std::size_t width) const {
    std::uint64_t peak = 0;
    for (auto& [k, c] : bins_) peak = std::max(peak, c);
    std::ostringstream os;
    for (auto& [k, c] : bins_) {
        const std::size_t len =
            peak == 0 ? 0 : std::size_t(double(c) / double(peak) * double(width));
        os << "[2^" << k << ", 2^" << (k + 1) << ")\t" << c << "\t"
           << std::string(len, '#') << "\n";
    }
    return os.str();
}

VuList::VuList(std::vector<Axis> axes) : axes_(std::move(axes)) {
    if (axes_.empty()) throw std::invalid_argument("VuList: need at least one axis");
    for (const auto& a : axes_) {
        if (!(a.hi > a.lo)) throw std::invalid_argument("VuList: axis hi must exceed lo");
        if (a.bins == 0) throw std::invalid_argument("VuList: axis bins must be >= 1");
    }
}

std::vector<std::size_t> VuList::cell_of(std::span<const double> v) const {
    if (v.size() != axes_.size())
        throw std::invalid_argument("VuList: vector dimension mismatch");
    std::vector<std::size_t> cell(axes_.size());
    for (std::size_t d = 0; d < axes_.size(); ++d) {
        const auto& a = axes_[d];
        double x = std::clamp(v[d], a.lo, std::nexttoward(a.hi, a.lo));
        const double frac = (x - a.lo) / (a.hi - a.lo);
        cell[d] = std::min(std::size_t(frac * double(a.bins)), a.bins - 1);
    }
    return cell;
}

std::uint64_t VuList::key_of(const std::vector<std::size_t>& cell) const {
    std::uint64_t key = 0;
    for (std::size_t d = 0; d < cell.size(); ++d) key = key * 4096 + cell[d];
    return key;
}

void VuList::add(std::span<const double> v) {
    ++cells_[key_of(cell_of(v))];
    raw_.emplace_back(v.begin(), v.end());
    ++total_;
}

std::uint64_t VuList::count_at(std::span<const double> v) const {
    auto it = cells_.find(key_of(cell_of(v)));
    return it == cells_.end() ? 0 : it->second;
}

Histogram VuList::marginal(std::size_t dim) const {
    if (dim >= axes_.size()) throw std::out_of_range("VuList::marginal");
    const auto& a = axes_[dim];
    Histogram h(a.lo, a.hi, a.bins);
    for (const auto& v : raw_) h.add(v[dim]);
    return h;
}

}  // namespace kooza::stats
