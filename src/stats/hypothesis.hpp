// Goodness-of-fit tests: Kolmogorov-Smirnov (one- and two-sample) and the
// chi-square test. KS is the selection criterion the paper's survey
// (Feitelson '02) prescribes for identifying the arrival-distribution
// family.
#pragma once

#include <span>

#include "stats/distributions.hpp"

namespace kooza::stats {

/// Result of a goodness-of-fit test.
struct TestResult {
    double statistic = 0.0;  ///< KS D or chi-square X^2
    double p_value = 1.0;    ///< asymptotic p-value
    /// Convenience: reject H0 at significance alpha?
    [[nodiscard]] bool reject(double alpha = 0.05) const noexcept {
        return p_value < alpha;
    }
};

/// One-sample KS statistic D = sup |F_n(x) - F(x)|. Throws on empty sample.
[[nodiscard]] double ks_statistic(std::span<const double> xs, const Distribution& dist);

/// One-sample KS test against a fully-specified distribution.
[[nodiscard]] TestResult ks_test(std::span<const double> xs, const Distribution& dist);

/// Two-sample KS statistic D = sup |F_n(x) - G_m(x)|.
[[nodiscard]] double ks_statistic_two_sample(std::span<const double> xs,
                                             std::span<const double> ys);

/// Two-sample KS test.
[[nodiscard]] TestResult ks_test_two_sample(std::span<const double> xs,
                                            std::span<const double> ys);

/// Chi-square goodness-of-fit of a sample against a distribution, using
/// `bins` equiprobable bins (expected count n/bins each). `fitted_params`
/// reduces the degrees of freedom (dof = bins - 1 - fitted_params).
[[nodiscard]] TestResult chi_square_test(std::span<const double> xs,
                                         const Distribution& dist,
                                         std::size_t bins = 10,
                                         std::size_t fitted_params = 0);

}  // namespace kooza::stats
