// Parametric distribution families.
//
// The paper's modeling pipeline (Feitelson '02, Li '10) fits candidate
// families to observed marginals (inter-arrival times, sizes, service
// demands) and selects by Kolmogorov-Smirnov distance. Distribution is the
// common interface those fits return; see fitting.hpp for the estimators.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace kooza::stats {

/// Abstract continuous distribution over (a subset of) the reals.
class Distribution {
public:
    virtual ~Distribution() = default;

    /// P(X <= x).
    [[nodiscard]] virtual double cdf(double x) const = 0;

    /// Inverse CDF for p in (0,1). Default implementation bisects cdf();
    /// closed-form families override.
    [[nodiscard]] virtual double quantile(double p) const;

    [[nodiscard]] virtual double mean() const = 0;
    [[nodiscard]] virtual double variance() const = 0;

    /// Draw one variate.
    [[nodiscard]] virtual double sample(sim::Rng& rng) const = 0;

    /// Family name, e.g. "exponential".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Human-readable family + parameters, e.g. "exponential(lambda=2.5)".
    [[nodiscard]] virtual std::string describe() const = 0;

    [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;

protected:
    /// Bisection fallback for quantile(); search_lo/hi bound the support.
    [[nodiscard]] double quantile_by_bisection(double p, double lo, double hi) const;
};

/// Point mass at `value` (used for constant request features).
class Deterministic final : public Distribution {
public:
    explicit Deterministic(double value) : value_(value) {}
    [[nodiscard]] double cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }
    [[nodiscard]] double quantile(double) const override { return value_; }
    [[nodiscard]] double mean() const override { return value_; }
    [[nodiscard]] double variance() const override { return 0.0; }
    [[nodiscard]] double sample(sim::Rng&) const override { return value_; }
    [[nodiscard]] std::string name() const override { return "deterministic"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Deterministic>(*this);
    }
    [[nodiscard]] double value() const noexcept { return value_; }

private:
    double value_;
};

/// Uniform on [lo, hi].
class Uniform final : public Distribution {
public:
    Uniform(double lo, double hi);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
    [[nodiscard]] double variance() const override {
        return (hi_ - lo_) * (hi_ - lo_) / 12.0;
    }
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "uniform"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Uniform>(*this);
    }
    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }

private:
    double lo_, hi_;
};

/// Exponential with rate lambda (mean 1/lambda).
class Exponential final : public Distribution {
public:
    explicit Exponential(double lambda);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override { return 1.0 / lambda_; }
    [[nodiscard]] double variance() const override { return 1.0 / (lambda_ * lambda_); }
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "exponential"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Exponential>(*this);
    }
    [[nodiscard]] double lambda() const noexcept { return lambda_; }

private:
    double lambda_;
};

class Normal final : public Distribution {
public:
    Normal(double mean, double stddev);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override { return mean_; }
    [[nodiscard]] double variance() const override { return sd_ * sd_; }
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "normal"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Normal>(*this);
    }

private:
    double mean_, sd_;
};

/// Lognormal: log X ~ Normal(mu, sigma).
class LogNormal final : public Distribution {
public:
    LogNormal(double mu, double sigma);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] double variance() const override;
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "lognormal"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<LogNormal>(*this);
    }
    [[nodiscard]] double mu() const noexcept { return mu_; }
    [[nodiscard]] double sigma() const noexcept { return sigma_; }

private:
    double mu_, sigma_;
};

/// Pareto with scale xm and shape alpha: the heavy-tail family the paper's
/// survey highlights for DC request sizes.
class Pareto final : public Distribution {
public:
    Pareto(double xm, double alpha);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override;       ///< inf if alpha <= 1
    [[nodiscard]] double variance() const override;   ///< inf if alpha <= 2
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "pareto"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Pareto>(*this);
    }
    [[nodiscard]] double xm() const noexcept { return xm_; }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double xm_, alpha_;
};

class Weibull final : public Distribution {
public:
    Weibull(double shape, double scale);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] double variance() const override;
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "weibull"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Weibull>(*this);
    }
    [[nodiscard]] double shape() const noexcept { return shape_; }
    [[nodiscard]] double scale() const noexcept { return scale_; }

private:
    double shape_, scale_;
};

/// Gamma with shape k and scale theta.
class Gamma final : public Distribution {
public:
    Gamma(double shape, double scale);
    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double mean() const override { return shape_ * scale_; }
    [[nodiscard]] double variance() const override { return shape_ * scale_ * scale_; }
    [[nodiscard]] double sample(sim::Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return "gamma"; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<Distribution> clone() const override {
        return std::make_unique<Gamma>(*this);
    }
    [[nodiscard]] double quantile(double p) const override;

private:
    double shape_, scale_;
};

/// Zipf popularity sampler over n ranked items: P(i) proportional to
/// 1/(i+1)^s. Not a Distribution (discrete rank domain); used for file
/// popularity in the web-search workload.
class ZipfSampler {
public:
    ZipfSampler(std::size_t n, double s);
    [[nodiscard]] std::size_t sample(sim::Rng& rng) const;
    [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
    [[nodiscard]] double s() const noexcept { return s_; }
    /// Probability of rank i.
    [[nodiscard]] double pmf(std::size_t i) const;

private:
    std::vector<double> cdf_;
    double s_;
};

}  // namespace kooza::stats
