#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace kooza::stats {

Empirical::Empirical(std::span<const double> xs) : xs_(xs.begin(), xs.end()) {
    if (xs_.empty()) throw std::invalid_argument("Empirical: empty sample");
    std::sort(xs_.begin(), xs_.end());
}

double Empirical::cdf(double x) const {
    auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    return double(it - xs_.begin()) / double(xs_.size());
}

double Empirical::quantile(double p) const {
    if (!(p >= 0.0 && p <= 1.0))
        throw std::invalid_argument("Empirical::quantile: p outside [0,1]");
    if (xs_.size() == 1) return xs_[0];
    const double pos = p * double(xs_.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = pos - double(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Empirical::mean() const { return kooza::stats::mean(xs_); }
double Empirical::variance() const { return kooza::stats::variance(xs_); }

double Empirical::sample(sim::Rng& rng) const {
    return quantile(rng.uniform(0.0, 1.0));
}

std::string Empirical::describe() const {
    std::ostringstream os;
    os << "empirical(n=" << xs_.size() << ", mean=" << mean() << ")";
    return os.str();
}

}  // namespace kooza::stats
