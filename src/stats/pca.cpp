#include "stats/pca.hpp"

#include <cmath>
#include <stdexcept>

namespace kooza::stats {

Pca::Pca(const Matrix& data, bool standardize) {
    means_ = column_means(data);
    scales_.assign(data.cols(), 1.0);
    Matrix centered(data.rows(), data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            centered.at(r, c) = data.at(r, c) - means_[c];
    if (standardize) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            double ss = 0.0;
            for (std::size_t r = 0; r < data.rows(); ++r)
                ss += centered.at(r, c) * centered.at(r, c);
            const double sd = std::sqrt(ss / double(data.rows() - 1));
            if (sd > 0.0) {
                scales_[c] = sd;
                for (std::size_t r = 0; r < data.rows(); ++r) centered.at(r, c) /= sd;
            }
        }
    }
    eigen_ = symmetric_eigen(covariance_matrix(centered));
    // Clamp tiny negative eigenvalues produced by round-off.
    for (auto& v : eigen_.values)
        if (v < 0.0 && v > -1e-10) v = 0.0;
}

std::vector<double> Pca::component(std::size_t i) const {
    if (i >= dimensions()) throw std::out_of_range("Pca::component");
    return eigen_.vectors.col(i);
}

double Pca::explained_variance(std::size_t k) const {
    if (k > dimensions()) throw std::out_of_range("Pca::explained_variance");
    double total = 0.0, head = 0.0;
    for (std::size_t i = 0; i < eigen_.values.size(); ++i) {
        total += eigen_.values[i];
        if (i < k) head += eigen_.values[i];
    }
    return total > 0.0 ? head / total : 0.0;
}

std::size_t Pca::components_for(double target) const {
    if (!(target > 0.0 && target <= 1.0))
        throw std::invalid_argument("Pca::components_for: target in (0,1]");
    for (std::size_t k = 1; k <= dimensions(); ++k)
        if (explained_variance(k) >= target - 1e-12) return k;
    return dimensions();
}

std::vector<double> Pca::project(std::span<const double> x, std::size_t k) const {
    if (x.size() != dimensions()) throw std::invalid_argument("Pca::project: dimension");
    if (k > dimensions()) throw std::out_of_range("Pca::project: k");
    std::vector<double> scores(k, 0.0);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < dimensions(); ++d)
            scores[c] += ((x[d] - means_[d]) / scales_[d]) * eigen_.vectors.at(d, c);
    return scores;
}

std::vector<double> Pca::reconstruct(std::span<const double> scores) const {
    if (scores.size() > dimensions())
        throw std::invalid_argument("Pca::reconstruct: too many scores");
    std::vector<double> x(dimensions(), 0.0);
    for (std::size_t d = 0; d < dimensions(); ++d) {
        for (std::size_t c = 0; c < scores.size(); ++c)
            x[d] += scores[c] * eigen_.vectors.at(d, c);
        x[d] = x[d] * scales_[d] + means_[d];
    }
    return x;
}

}  // namespace kooza::stats
