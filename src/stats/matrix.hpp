// Small dense matrix for the multivariate statistics (PCA, GMM,
// regression). Row-major, double precision, no SIMD heroics — feature
// spaces here are a handful of dimensions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kooza::stats {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Build from nested initializer-like data; all rows must be equal length.
    static Matrix from_rows(const std::vector<std::vector<double>>& rows);
    static Matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;
    double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
    double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

    [[nodiscard]] std::span<const double> row(std::size_t r) const;
    [[nodiscard]] std::vector<double> col(std::size_t c) const;

    [[nodiscard]] Matrix transpose() const;
    [[nodiscard]] Matrix multiply(const Matrix& other) const;
    [[nodiscard]] std::vector<double> multiply(std::span<const double> v) const;

    /// Solve A x = b by Gaussian elimination with partial pivoting.
    /// Throws std::runtime_error if A is singular (pivot below 1e-12 scale).
    [[nodiscard]] static std::vector<double> solve(Matrix a, std::vector<double> b);

    /// Determinant by LU (destructive copy). For small matrices.
    [[nodiscard]] double determinant() const;

    /// Inverse by Gauss-Jordan. Throws on singular input.
    [[nodiscard]] Matrix inverse() const;

    [[nodiscard]] std::string to_string(int precision = 4) const;

private:
    std::size_t rows_ = 0, cols_ = 0;
    std::vector<double> data_;
};

/// Column means of a data matrix (rows = observations).
[[nodiscard]] std::vector<double> column_means(const Matrix& data);

/// Sample covariance matrix (rows = observations, unbiased n-1 normalizer).
/// Requires >= 2 rows.
[[nodiscard]] Matrix covariance_matrix(const Matrix& data);

/// Symmetric eigendecomposition by cyclic Jacobi rotations.
/// Returns eigenvalues (descending) and matching unit eigenvectors as
/// matrix columns. Input must be symmetric.
struct EigenResult {
    std::vector<double> values;
    Matrix vectors;  ///< column i is the eigenvector for values[i]
};
[[nodiscard]] EigenResult symmetric_eigen(const Matrix& sym, int max_sweeps = 100);

}  // namespace kooza::stats
