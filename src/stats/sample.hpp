// Bounded retention samples for streaming estimators.
//
// Chunked trainers (core::Trainer::train_streaming) cannot keep every
// observation of every feature in memory. CappedSample is the merge-able
// building block they use instead: it retains the first `cap` values
// verbatim (so an uncapped sample reproduces the in-memory fit
// bit-for-bit) while still counting everything it saw, and two samples
// built from adjacent chunks merge into the sample a single pass would
// have produced.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace kooza::stats {

/// First-K retention sample: keeps the first `cap` observed values in
/// observation order and counts the rest. Deterministic by construction
/// (no reservoir randomness), so a capped fit is reproducible and an
/// uncapped one is byte-identical to fitting the raw vector.
class CappedSample {
public:
    /// @param cap  max values retained; the default keeps everything.
    explicit CappedSample(std::size_t cap = std::numeric_limits<std::size_t>::max())
        : cap_(cap) {}

    void observe(double x) {
        ++seen_;
        if (values_.size() < cap_) values_.push_back(x);
    }

    /// Append `other`'s retained values (in its observation order) until
    /// this sample's cap; counts always combine. Merging chunk-ordered
    /// samples left to right reproduces a single sequential pass.
    void merge(const CappedSample& other) {
        seen_ += other.seen_;
        for (double x : other.values_) {
            if (values_.size() >= cap_) break;
            values_.push_back(x);
        }
    }

    [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
    /// Total observations, retained or not.
    [[nodiscard]] std::size_t seen() const noexcept { return seen_; }
    [[nodiscard]] std::size_t cap() const noexcept { return cap_; }
    /// True when at least one observation was dropped by the cap.
    [[nodiscard]] bool truncated() const noexcept { return seen_ > values_.size(); }
    [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

private:
    std::size_t cap_;
    std::size_t seen_ = 0;
    std::vector<double> values_;
};

}  // namespace kooza::stats
