#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace kooza::stats {

SimpleRegression fit_simple(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("fit_simple: length mismatch");
    if (xs.size() < 2) throw std::invalid_argument("fit_simple: need >= 2 points");
    const double mx = mean(xs), my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx <= 0.0) throw std::invalid_argument("fit_simple: zero variance in x");
    SimpleRegression r;
    r.slope = sxy / sxx;
    r.intercept = my - r.slope * mx;
    r.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
    return r;
}

LinearModel::LinearModel(const Matrix& data, std::span<const double> ys, double ridge) {
    if (ys.size() != data.rows())
        throw std::invalid_argument("LinearModel: response length mismatch");
    if (data.rows() <= data.cols() + 1)
        throw std::invalid_argument("LinearModel: need more observations than predictors");
    if (ridge < 0.0) throw std::invalid_argument("LinearModel: negative ridge");
    const std::size_t n = data.rows(), d = data.cols() + 1;  // +1 intercept
    // Normal equations X'X beta = X'y with X = [1 | data].
    Matrix xtx(d, d);
    std::vector<double> xty(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x(d, 1.0);
        for (std::size_t c = 0; c < data.cols(); ++c) x[c + 1] = data.at(i, c);
        for (std::size_t a = 0; a < d; ++a) {
            xty[a] += x[a] * ys[i];
            for (std::size_t b = 0; b < d; ++b) xtx.at(a, b) += x[a] * x[b];
        }
    }
    // Scale-invariant ridge: inflate each predictor's diagonal entry
    // proportionally (keeps collinear feature sets solvable).
    for (std::size_t a = 1; a < d; ++a) xtx.at(a, a) *= 1.0 + ridge;
    beta_ = Matrix::solve(xtx, xty);
    // R^2.
    const double my = mean(ys);
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row(data.row(i).begin(), data.row(i).end());
        const double e = ys[i] - predict(row);
        ss_res += e * e;
        ss_tot += (ys[i] - my) * (ys[i] - my);
    }
    r2_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}

double LinearModel::predict(std::span<const double> x) const {
    if (x.size() + 1 != beta_.size())
        throw std::invalid_argument("LinearModel::predict: dimension mismatch");
    double y = beta_[0];
    for (std::size_t c = 0; c < x.size(); ++c) y += beta_[c + 1] * x[c];
    return y;
}

}  // namespace kooza::stats
