#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.hpp"

namespace kooza::stats {

double ks_statistic(std::span<const double> xs, const Distribution& dist) {
    if (xs.empty()) throw std::invalid_argument("ks_statistic: empty sample");
    std::vector<double> s(xs.begin(), xs.end());
    std::sort(s.begin(), s.end());
    const double n = double(s.size());
    double d = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const double f = dist.cdf(s[i]);
        d = std::max(d, std::fabs(double(i + 1) / n - f));
        d = std::max(d, std::fabs(f - double(i) / n));
    }
    return d;
}

TestResult ks_test(std::span<const double> xs, const Distribution& dist) {
    const double d = ks_statistic(xs, dist);
    const double n = double(xs.size());
    const double lambda = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
    return TestResult{d, kolmogorov_survival(lambda)};
}

double ks_statistic_two_sample(std::span<const double> xs, std::span<const double> ys) {
    if (xs.empty() || ys.empty())
        throw std::invalid_argument("ks_statistic_two_sample: empty sample");
    std::vector<double> a(xs.begin(), xs.end()), b(ys.begin(), ys.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::size_t i = 0, j = 0;
    double d = 0.0;
    while (i < a.size() && j < b.size()) {
        const double v = std::min(a[i], b[j]);
        while (i < a.size() && a[i] <= v) ++i;
        while (j < b.size() && b[j] <= v) ++j;
        d = std::max(d, std::fabs(double(i) / double(a.size()) -
                                  double(j) / double(b.size())));
    }
    return d;
}

TestResult ks_test_two_sample(std::span<const double> xs, std::span<const double> ys) {
    const double d = ks_statistic_two_sample(xs, ys);
    const double n = double(xs.size()), m = double(ys.size());
    const double ne = n * m / (n + m);
    const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
    return TestResult{d, kolmogorov_survival(lambda)};
}

TestResult chi_square_test(std::span<const double> xs, const Distribution& dist,
                           std::size_t bins, std::size_t fitted_params) {
    if (xs.empty()) throw std::invalid_argument("chi_square_test: empty sample");
    if (bins < 2) throw std::invalid_argument("chi_square_test: need >= 2 bins");
    if (bins <= fitted_params + 1)
        throw std::invalid_argument("chi_square_test: dof would be <= 0");
    // Equiprobable bin edges from the model's quantile function.
    std::vector<double> edges(bins - 1);
    for (std::size_t k = 1; k < bins; ++k)
        edges[k - 1] = dist.quantile(double(k) / double(bins));
    std::vector<std::size_t> observed(bins, 0);
    for (double x : xs) {
        auto it = std::upper_bound(edges.begin(), edges.end(), x);
        ++observed[std::size_t(it - edges.begin())];
    }
    const double expected = double(xs.size()) / double(bins);
    double x2 = 0.0;
    for (std::size_t k = 0; k < bins; ++k) {
        const double diff = double(observed[k]) - expected;
        x2 += diff * diff / expected;
    }
    const double dof = double(bins - 1 - fitted_params);
    return TestResult{x2, chi_square_survival(x2, dof)};
}

}  // namespace kooza::stats
