// Principal component analysis.
//
// The paper proposes PCA/SVD/sampling/regression to "reduce the
// dimensionality of feature-space to the ones necessary for a
// representative and succinct model" (Section 4); Abrahao '04 uses PCA to
// categorize CPU-utilization trace data. This is a covariance-matrix PCA
// on top of the Jacobi eigensolver in matrix.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.hpp"

namespace kooza::stats {

class Pca {
public:
    /// Fit on a data matrix (rows = observations, cols = features).
    /// If `standardize` is true, features are scaled to unit variance
    /// (correlation-matrix PCA); zero-variance features are left unscaled.
    explicit Pca(const Matrix& data, bool standardize = false);

    [[nodiscard]] std::size_t dimensions() const noexcept { return means_.size(); }

    /// Eigenvalues of the (co)variance matrix, descending.
    [[nodiscard]] const std::vector<double>& eigenvalues() const noexcept {
        return eigen_.values;
    }

    /// Component i as a unit vector in feature space.
    [[nodiscard]] std::vector<double> component(std::size_t i) const;

    /// Fraction of total variance captured by the first k components.
    [[nodiscard]] double explained_variance(std::size_t k) const;

    /// Smallest k whose cumulative explained variance reaches `target`.
    [[nodiscard]] std::size_t components_for(double target) const;

    /// Project one observation onto the first k components.
    [[nodiscard]] std::vector<double> project(std::span<const double> x,
                                              std::size_t k) const;

    /// Reconstruct an observation from its k-dimensional projection.
    [[nodiscard]] std::vector<double> reconstruct(std::span<const double> scores) const;

private:
    std::vector<double> means_;
    std::vector<double> scales_;
    EigenResult eigen_;
};

}  // namespace kooza::stats
