// Descriptive statistics over samples.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kooza::stats {

/// Summary of a sample: moments and order statistics.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;   ///< unbiased (n-1) sample variance
    double stddev = 0.0;
    double skewness = 0.0;   ///< standardized third moment (0 if n < 3)
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p25 = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    /// Coefficient of variation (stddev / mean); 0 when mean == 0.
    [[nodiscard]] double cv() const noexcept { return mean != 0.0 ? stddev / mean : 0.0; }

    [[nodiscard]] std::string to_string() const;
};

/// Arithmetic mean. Returns 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance. Returns 0 for fewer than two points.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile, q in [0,1]. Throws on empty input or q
/// outside [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

[[nodiscard]] double median(std::span<const double> xs);

/// Full summary in one pass (plus a sort for the order statistics).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Pearson correlation of two equal-length samples. Returns 0 when either
/// side has zero variance. Throws on length mismatch.
[[nodiscard]] double correlation(std::span<const double> xs, std::span<const double> ys);

/// Deviation of `measured` from a `baseline`, the metric Table 2 of the
/// paper reports ("Variation"). With a nonzero baseline the deviation is
/// relative: `value` is |measured-baseline| / |baseline| as a percentage
/// and `absolute` is false. A zero baseline makes a relative measure
/// meaningless, so the deviation is then the absolute difference
/// |measured| in the quantity's own unit and `absolute` is true; 0 vs 0
/// is no deviation (0%, relative).
struct Variation {
    double value = 0.0;
    bool absolute = false;
};

[[nodiscard]] Variation variation(double measured, double baseline) noexcept;

/// Shim over variation(): returns just `.value` — a percentage for
/// nonzero baselines, the absolute deviation for zero baselines. Callers
/// that can meet a zero baseline should use variation() and check
/// `.absolute` instead of interpreting this as a percentage.
[[nodiscard]] double variation_pct(double measured, double baseline) noexcept;

}  // namespace kooza::stats
