#include "stats/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/empirical.hpp"
#include "stats/hypothesis.hpp"

namespace kooza::stats {

namespace {

void require_nonempty(std::span<const double> xs, const char* who) {
    if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty sample");
}

bool all_positive(std::span<const double> xs) {
    return std::all_of(xs.begin(), xs.end(), [](double x) { return x > 0.0; });
}

bool is_constant(std::span<const double> xs) {
    return std::all_of(xs.begin(), xs.end(), [&](double x) { return x == xs.front(); });
}

}  // namespace

std::string family_name(Family f) {
    switch (f) {
        case Family::kDeterministic: return "deterministic";
        case Family::kUniform: return "uniform";
        case Family::kExponential: return "exponential";
        case Family::kNormal: return "normal";
        case Family::kLogNormal: return "lognormal";
        case Family::kPareto: return "pareto";
        case Family::kWeibull: return "weibull";
        case Family::kGamma: return "gamma";
    }
    return "unknown";
}

std::unique_ptr<Exponential> fit_exponential(std::span<const double> xs) {
    require_nonempty(xs, "fit_exponential");
    const double m = mean(xs);
    if (!(m > 0.0)) throw std::invalid_argument("fit_exponential: mean must be > 0");
    return std::make_unique<Exponential>(1.0 / m);
}

std::unique_ptr<Normal> fit_normal(std::span<const double> xs) {
    require_nonempty(xs, "fit_normal");
    const double sd = stddev(xs);
    if (!(sd > 0.0)) throw std::invalid_argument("fit_normal: zero variance");
    return std::make_unique<Normal>(mean(xs), sd);
}

std::unique_ptr<LogNormal> fit_lognormal(std::span<const double> xs) {
    require_nonempty(xs, "fit_lognormal");
    if (!all_positive(xs))
        throw std::invalid_argument("fit_lognormal: data must be positive");
    std::vector<double> logs;
    logs.reserve(xs.size());
    for (double x : xs) logs.push_back(std::log(x));
    const double sd = stddev(logs);
    if (!(sd > 0.0)) throw std::invalid_argument("fit_lognormal: zero log-variance");
    return std::make_unique<LogNormal>(mean(logs), sd);
}

std::unique_ptr<Pareto> fit_pareto(std::span<const double> xs) {
    require_nonempty(xs, "fit_pareto");
    if (!all_positive(xs)) throw std::invalid_argument("fit_pareto: data must be positive");
    const double xm = *std::min_element(xs.begin(), xs.end());
    double s = 0.0;
    for (double x : xs) s += std::log(x / xm);
    if (!(s > 0.0)) throw std::invalid_argument("fit_pareto: degenerate sample");
    return std::make_unique<Pareto>(xm, double(xs.size()) / s);
}

std::unique_ptr<Weibull> fit_weibull(std::span<const double> xs) {
    require_nonempty(xs, "fit_weibull");
    if (!all_positive(xs))
        throw std::invalid_argument("fit_weibull: data must be positive");
    if (is_constant(xs)) throw std::invalid_argument("fit_weibull: constant sample");
    // Newton iteration on the MLE shape equation:
    // 1/k = sum(x^k ln x)/sum(x^k) - mean(ln x)
    std::vector<double> lx;
    lx.reserve(xs.size());
    for (double x : xs) lx.push_back(std::log(x));
    const double mean_lx = mean(lx);
    double k = 1.0;
    for (int iter = 0; iter < 100; ++iter) {
        double s0 = 0.0, s1 = 0.0, s2 = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double xk = std::pow(xs[i], k);
            s0 += xk;
            s1 += xk * lx[i];
            s2 += xk * lx[i] * lx[i];
        }
        const double f = s1 / s0 - 1.0 / k - mean_lx;
        const double fp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        const double step = f / fp;
        k -= step;
        if (!(k > 0.0)) k = 1e-3;
        if (std::fabs(step) < 1e-10 * std::max(1.0, k)) break;
    }
    double s0 = 0.0;
    for (double x : xs) s0 += std::pow(x, k);
    const double scale = std::pow(s0 / double(xs.size()), 1.0 / k);
    return std::make_unique<Weibull>(k, scale);
}

std::unique_ptr<Gamma> fit_gamma(std::span<const double> xs) {
    require_nonempty(xs, "fit_gamma");
    if (!all_positive(xs)) throw std::invalid_argument("fit_gamma: data must be positive");
    const double m = mean(xs), v = variance(xs);
    if (!(v > 0.0)) throw std::invalid_argument("fit_gamma: zero variance");
    return std::make_unique<Gamma>(m * m / v, v / m);
}

std::unique_ptr<Uniform> fit_uniform(std::span<const double> xs) {
    require_nonempty(xs, "fit_uniform");
    const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
    if (*mn == *mx) throw std::invalid_argument("fit_uniform: constant sample");
    // Widen by the mean gap so the extreme order statistics are interior.
    const double margin = (*mx - *mn) / double(xs.size());
    return std::make_unique<Uniform>(*mn - margin, *mx + margin);
}

std::vector<Fit> fit_all(std::span<const double> xs, std::span<const Family> families) {
    require_nonempty(xs, "fit_all");
    if (is_constant(xs)) {
        std::vector<Fit> out;
        out.push_back(Fit{std::make_unique<Deterministic>(xs.front()), 0.0});
        return out;
    }
    std::vector<Fit> fits;
    for (Family f : families) {
        std::unique_ptr<Distribution> d;
        try {
            switch (f) {
                case Family::kDeterministic: continue;  // only for constant data
                case Family::kUniform: d = fit_uniform(xs); break;
                case Family::kExponential: d = fit_exponential(xs); break;
                case Family::kNormal: d = fit_normal(xs); break;
                case Family::kLogNormal: d = fit_lognormal(xs); break;
                case Family::kPareto: d = fit_pareto(xs); break;
                case Family::kWeibull: d = fit_weibull(xs); break;
                case Family::kGamma: d = fit_gamma(xs); break;
            }
        } catch (const std::invalid_argument&) {
            continue;  // family's preconditions not met by this sample
        }
        const double ks = ks_statistic(xs, *d);
        fits.push_back(Fit{std::move(d), ks});
    }
    std::sort(fits.begin(), fits.end(),
              [](const Fit& a, const Fit& b) { return a.ks < b.ks; });
    return fits;
}

Fit fit_best(std::span<const double> xs) {
    static const Family kDefault[] = {Family::kExponential, Family::kNormal,
                                      Family::kLogNormal,   Family::kPareto,
                                      Family::kWeibull,     Family::kGamma,
                                      Family::kUniform};
    auto fits = fit_all(xs, kDefault);
    if (fits.empty()) throw std::runtime_error("fit_best: no family fit the sample");
    return std::move(fits.front());
}

std::unique_ptr<Distribution> fit_or_empirical(std::span<const double> xs,
                                               double ks_threshold) {
    require_nonempty(xs, "fit_or_empirical");
    if (is_constant(xs)) return std::make_unique<Deterministic>(xs.front());
    auto best = fit_best(xs);
    if (best.valid() && best.ks <= ks_threshold) return std::move(best.dist);
    return std::make_unique<Empirical>(xs);
}

}  // namespace kooza::stats
