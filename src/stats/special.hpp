// Special functions shared by the distribution and hypothesis-test code:
// normal CDF, regularized incomplete gamma, and the Kolmogorov survival
// function used for KS p-values.
#pragma once

namespace kooza::stats {

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9). Throws std::invalid_argument outside (0,1).
[[nodiscard]] double normal_quantile(double p);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// Requires a > 0, x >= 0.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Kolmogorov distribution survival function:
/// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
/// Used to turn a scaled KS statistic into an asymptotic p-value.
[[nodiscard]] double kolmogorov_survival(double lambda) noexcept;

/// Chi-square survival function with k degrees of freedom.
[[nodiscard]] double chi_square_survival(double x, double dof);

}  // namespace kooza::stats
