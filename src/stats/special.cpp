#include "stats/special.hpp"

#include <cmath>
#include <stdexcept>

namespace kooza::stats {

double normal_cdf(double z) noexcept { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
    if (!(p > 0.0 && p < 1.0))
        throw std::invalid_argument("normal_quantile: p must be in (0,1)");
    // Peter Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425, phigh = 1.0 - plow;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > phigh) {
        q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

namespace {

// std::lgamma writes the global `signgam`, a data race once fitters run
// on the thread pool; lgamma_r keeps the sign local (unused: a > 0 here).
double lgamma_local(double a) {
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return ::lgamma_r(a, &sign);
#else
    return std::lgamma(a);
#endif
}

// Series expansion of P(a,x), valid for x < a+1.
double gamma_p_series(double a, double x) {
    const double lg = lgamma_local(a);
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lg);
}

// Continued fraction for Q(a,x), valid for x >= a+1 (Lentz's method).
double gamma_q_cf(double a, double x) {
    const double lg = lgamma_local(a);
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 500; ++i) {
        const double an = -double(i) * (double(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny) d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny) c = tiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < 1e-14) break;
    }
    return std::exp(-x + a * std::log(x) - lg) * h;
}

}  // namespace

double gamma_p(double a, double x) {
    if (!(a > 0.0)) throw std::invalid_argument("gamma_p: a must be > 0");
    if (x < 0.0) throw std::invalid_argument("gamma_p: x must be >= 0");
    if (x == 0.0) return 0.0;
    if (x < a + 1.0) return gamma_p_series(a, x);
    return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) { return 1.0 - gamma_p(a, x); }

double kolmogorov_survival(double lambda) noexcept {
    if (lambda <= 0.0) return 1.0;
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        const double term = std::exp(-2.0 * double(k) * double(k) * lambda * lambda);
        sum += sign * term;
        sign = -sign;
        if (term < 1e-12) break;
    }
    const double q = 2.0 * sum;
    if (q < 0.0) return 0.0;
    if (q > 1.0) return 1.0;
    return q;
}

double chi_square_survival(double x, double dof) {
    if (!(dof > 0.0)) throw std::invalid_argument("chi_square_survival: dof must be > 0");
    if (x <= 0.0) return 1.0;
    return gamma_q(dof / 2.0, x / 2.0);
}

}  // namespace kooza::stats
