// Histograms: fixed-width linear and logarithmic binning, plus the
// multi-dimensional "VU-list" histogram of Luthi '98 cited by the paper
// (collections of parameter vectors binned jointly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace kooza::stats {

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples clamp
/// into the first/last bin so mass is never silently dropped.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    void add_all(std::span<const double> xs) noexcept;

    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }

    /// Center of bin i.
    [[nodiscard]] double bin_center(std::size_t bin) const;
    /// Bin index a value falls in (clamped).
    [[nodiscard]] std::size_t bin_of(double x) const noexcept;
    /// Normalized frequencies (sum to 1; all-zero if empty).
    [[nodiscard]] std::vector<double> frequencies() const;

    /// Simple fixed-width ASCII rendering, for bench/example output.
    [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Log2-binned histogram for heavy-tailed positive quantities (request
/// sizes, latencies). Bin k holds values in [2^k, 2^(k+1)).
class LogHistogram {
public:
    void add(double x);
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Map of exponent -> count.
    [[nodiscard]] const std::map<int, std::uint64_t>& bins() const noexcept { return bins_; }
    [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
    std::map<int, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/// Multi-dimensional histogram over parameter vectors ("VU-list", Luthi).
/// Each dimension has its own linear binning; cells are stored sparsely.
class VuList {
public:
    struct Axis {
        std::string name;
        double lo = 0.0;
        double hi = 1.0;
        std::size_t bins = 10;
    };

    explicit VuList(std::vector<Axis> axes);

    /// Add one parameter vector (size must equal dimension count).
    void add(std::span<const double> v);

    [[nodiscard]] std::size_t dimensions() const noexcept { return axes_.size(); }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Number of non-empty cells.
    [[nodiscard]] std::size_t occupied_cells() const noexcept { return cells_.size(); }
    /// Count in the cell containing vector v.
    [[nodiscard]] std::uint64_t count_at(std::span<const double> v) const;

    /// Marginal histogram of one dimension.
    [[nodiscard]] Histogram marginal(std::size_t dim) const;

private:
    [[nodiscard]] std::vector<std::size_t> cell_of(std::span<const double> v) const;
    [[nodiscard]] std::uint64_t key_of(const std::vector<std::size_t>& cell) const;

    std::vector<Axis> axes_;
    std::map<std::uint64_t, std::uint64_t> cells_;
    std::vector<std::vector<double>> raw_;  // kept for marginals
    std::uint64_t total_ = 0;
};

}  // namespace kooza::stats
