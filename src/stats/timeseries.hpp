// Time-series characterization: autocorrelation, burstiness, self-
// similarity (Hurst exponent), and stationarity — the request-stream
// features the paper's survey says DC workloads exhibit (Feitelson, Li,
// Sengupta).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace kooza::stats {

/// Autocorrelation function at lags 1..max_lag (lag 0 is omitted; it is 1).
/// Returns zeros for series with no variance. Throws if max_lag >= n.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

/// Single-lag autocorrelation.
[[nodiscard]] double autocorrelation_at(std::span<const double> xs, std::size_t lag);

/// Index of dispersion for counts (IDC): variance/mean of per-window event
/// counts. 1 for a Poisson stream; > 1 indicates burstiness.
/// `arrivals` are event timestamps; `window` is the bin width.
[[nodiscard]] double index_of_dispersion(std::span<const double> arrivals, double window);

/// Peak-to-mean ratio of per-window counts, a second burstiness measure.
[[nodiscard]] double peak_to_mean(std::span<const double> arrivals, double window);

/// Hurst exponent via rescaled-range (R/S) analysis over dyadic window
/// sizes. 0.5 for short-range-dependent series; > 0.5 indicates long-range
/// dependence / self-similarity. Requires n >= 32.
[[nodiscard]] double hurst_exponent(std::span<const double> xs);

/// Crude stationarity check: split into `pieces` windows and report the
/// max relative deviation of window means from the global mean. Small
/// values (< ~0.1) indicate first-order stationarity.
[[nodiscard]] double stationarity_drift(std::span<const double> xs, std::size_t pieces = 4);

/// Dominant period detection by maximizing the ACF over lags in
/// [min_lag, max_lag]. Returns 0 when no lag's ACF exceeds `threshold`
/// (i.e. no convincing pseudoperiodicity).
[[nodiscard]] std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                                          std::size_t max_lag, double threshold = 0.2);

}  // namespace kooza::stats
