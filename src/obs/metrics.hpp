// kooza_obs — deterministic metrics registry (GWP-style self-observation).
//
// The paper's measurement half (Section 2.2, GWP/Dapper) is about watching
// the fleet; this module watches the *pipeline itself*: every subsystem
// (sim engine, device models, GFS servers, KOOZA trainer/replayer)
// publishes counters, gauges and fixed-bucket log2 histograms into one
// process-wide registry, exported as JSON/CSV snapshots.
//
// Determinism discipline (same contract as kooza_par's shard_seed): all
// accumulation is integer-valued and sharded per thread, and snapshots
// merge the shards in fixed pool order — integer addition is associative
// and commutative, so a fixed-seed run exports a byte-identical snapshot
// at any thread count. The one escape hatch is wall-clock timers (train
// wall time etc.): metrics created with `wall = true` are tagged in the
// snapshot and excluded from deterministic exports.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kooza::obs {

/// Unit of a metric's value (sums and histogram samples).
enum class Unit { kCount, kBytes, kNanoseconds };
[[nodiscard]] const char* to_string(Unit u) noexcept;

/// Number of per-thread accumulation shards per metric. Threads hash onto
/// shards round-robin; merging always walks shards 0..kShards-1.
inline constexpr std::size_t kShards = 8;

namespace detail {
/// Shard slot of the calling thread (stable for the thread's lifetime).
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

/// Monotonic counter. add() is wait-free (one relaxed atomic add on the
/// calling thread's shard); value() merges shards in pool order.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        slots_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
        return total;
    }
    void reset() noexcept {
        for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Slot, kShards> slots_{};
};

/// Point-in-time value plus the maximum ever set. Gauges are meant for
/// single-threaded (simulation-side) state like "servers currently down";
/// concurrent set() keeps the max exact but makes value() last-writer-wins.
class Gauge {
public:
    void set(double v) noexcept {
        value_.store(v, std::memory_order_relaxed);
        double cur = max_.load(std::memory_order_relaxed);
        while (v > cur &&
               !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    void add(double delta) noexcept { set(value() + delta); }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double max() const noexcept {
        return max_.load(std::memory_order_relaxed);
    }
    void reset() noexcept {
        value_.store(0.0, std::memory_order_relaxed);
        max_.store(0.0, std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
    std::atomic<double> max_{0.0};
};

/// Fixed-bucket log2 histogram over unsigned 64-bit samples. Bucket 0
/// holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b). Counts and the
/// running sum are integers, so merges are order-independent.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;  ///< 0 plus one per bit width

    /// Bucket index of `v` (0 for 0, else bit width of v).
    [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
        std::size_t b = 0;
        while (v != 0) {
            v >>= 1;
            ++b;
        }
        return b;
    }

    void observe(std::uint64_t v) noexcept {
        auto& sh = shards_[detail::shard_index()];
        sh.count.fetch_add(1, std::memory_order_relaxed);
        sh.sum.fetch_add(v, std::memory_order_relaxed);
        sh.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    }
    /// Record a duration in seconds as integer nanoseconds (negatives
    /// clamp to 0) — the deterministic representation of simulated time.
    void observe_seconds(double s) noexcept {
        observe(s > 0.0 ? std::uint64_t(s * 1e9) : 0);
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
        std::uint64_t n = 0;
        for (const auto& sh : shards_) n += sh.count.load(std::memory_order_relaxed);
        return n;
    }
    [[nodiscard]] std::uint64_t sum() const noexcept {
        std::uint64_t n = 0;
        for (const auto& sh : shards_) n += sh.sum.load(std::memory_order_relaxed);
        return n;
    }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
        std::uint64_t n = 0;
        for (const auto& sh : shards_)
            n += sh.buckets[i].load(std::memory_order_relaxed);
        return n;
    }
    void reset() noexcept {
        for (auto& sh : shards_) {
            sh.count.store(0, std::memory_order_relaxed);
            sh.sum.store(0, std::memory_order_relaxed);
            for (auto& b : sh.buckets) b.store(0, std::memory_order_relaxed);
        }
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    };
    std::array<Shard, kShards> shards_{};
};

/// RAII timer recording an elapsed duration into a histogram (as integer
/// nanoseconds). Simulated-clock-aware: pass a clock callback reading the
/// owning sim::Engine's now() for deterministic timings, or use the
/// wall-clock constructor for real elapsed time (the target histogram
/// should then be registered with wall = true). Scopes nest freely — each
/// records its own span independently.
class TimerScope {
public:
    using Clock = std::function<double()>;  ///< seconds

    TimerScope(Histogram& h, Clock sim_clock)
        : h_(h), clock_(std::move(sim_clock)), sim_start_(clock_()) {}
    explicit TimerScope(Histogram& h)
        : h_(h), wall_start_(std::chrono::steady_clock::now()) {}
    ~TimerScope() {
        if (clock_) {
            h_.observe_seconds(clock_() - sim_start_);
        } else {
            const auto dt = std::chrono::steady_clock::now() - wall_start_;
            h_.observe(std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
        }
    }
    TimerScope(const TimerScope&) = delete;
    TimerScope& operator=(const TimerScope&) = delete;

private:
    Histogram& h_;
    Clock clock_;
    double sim_start_ = 0.0;
    std::chrono::steady_clock::time_point wall_start_{};
};

/// One exported metric (see export.hpp for serialization).
struct MetricSnapshot {
    enum class Kind { kCounter, kGauge, kHistogram };

    std::string name;
    Kind kind = Kind::kCounter;
    Unit unit = Unit::kCount;
    bool wall = false;  ///< wall-clock-derived: excluded from deterministic exports

    std::uint64_t value = 0;                     ///< counter
    double gauge_value = 0.0, gauge_max = 0.0;   ///< gauge
    std::uint64_t count = 0, sum = 0;            ///< histogram
    /// Sparse non-empty buckets as (index, count), ascending index.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    /// Histogram mean in the metric's unit (0 when empty).
    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : double(sum) / double(count);
    }
};

/// Deterministically ordered (by name) view of a registry.
struct Snapshot {
    std::vector<MetricSnapshot> metrics;

    /// Metric by exact name, nullptr when absent.
    [[nodiscard]] const MetricSnapshot* find(std::string_view name) const noexcept;
};

/// Named metric store. Creation is mutex-guarded and idempotent; returned
/// references stay valid for the registry's lifetime (reset() zeroes
/// values but never invalidates references). Instrumented classes should
/// fetch their metrics once and cache the references — lookups take a
/// lock, updates do not.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Process-wide registry used by all built-in instrumentation.
    [[nodiscard]] static Registry& global();

    /// Find-or-create. Throws std::logic_error if `name` already exists
    /// with a different metric kind. The unit/wall tags are fixed by the
    /// first registration.
    Counter& counter(std::string_view name, Unit unit = Unit::kCount);
    Gauge& gauge(std::string_view name, Unit unit = Unit::kCount);
    Histogram& histogram(std::string_view name, Unit unit = Unit::kCount,
                         bool wall = false);

    /// Merged values of every registered metric, sorted by name.
    [[nodiscard]] Snapshot snapshot() const;

    /// Zero every metric's value. Registrations — and outstanding
    /// references — survive, so cached instrumentation stays valid.
    void reset();

    [[nodiscard]] std::size_t size() const;

private:
    struct Entry {
        MetricSnapshot::Kind kind;
        Unit unit = Unit::kCount;
        bool wall = false;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    mutable std::mutex mu_;
    std::map<std::string, Entry, std::less<>> entries_;
};

/// Shorthands into Registry::global().
[[nodiscard]] Counter& counter(std::string_view name, Unit unit = Unit::kCount);
[[nodiscard]] Gauge& gauge(std::string_view name, Unit unit = Unit::kCount);
[[nodiscard]] Histogram& histogram(std::string_view name, Unit unit = Unit::kCount,
                                   bool wall = false);

}  // namespace kooza::obs
