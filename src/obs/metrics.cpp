#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace kooza::obs {

const char* to_string(Unit u) noexcept {
    switch (u) {
        case Unit::kBytes: return "bytes";
        case Unit::kNanoseconds: return "ns";
        case Unit::kCount: break;
    }
    return "count";
}

namespace detail {

std::size_t shard_index() noexcept {
    // Round-robin shard assignment: each new thread takes the next slot.
    // A thread's slot is fixed for its lifetime, so its updates never
    // contend with other threads' hot shards (beyond the modulo wrap).
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

}  // namespace detail

const MetricSnapshot* Snapshot::find(std::string_view name) const noexcept {
    for (const auto& m : metrics)
        if (m.name == name) return &m;
    return nullptr;
}

Registry& Registry::global() {
    // Leaked on purpose: instrumentation in static-destruction order must
    // still find live metrics.
    static Registry* g = new Registry();
    return *g;
}

Counter& Registry::counter(std::string_view name, Unit unit) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e{MetricSnapshot::Kind::kCounter, unit, false,
                std::make_unique<Counter>(), nullptr, nullptr};
        it = entries_.emplace(std::string(name), std::move(e)).first;
    } else if (it->second.kind != MetricSnapshot::Kind::kCounter) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' already registered with a different kind");
    }
    return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name, Unit unit) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e{MetricSnapshot::Kind::kGauge, unit, false, nullptr,
                std::make_unique<Gauge>(), nullptr};
        it = entries_.emplace(std::string(name), std::move(e)).first;
    } else if (it->second.kind != MetricSnapshot::Kind::kGauge) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' already registered with a different kind");
    }
    return *it->second.gauge;
}

Histogram& Registry::histogram(std::string_view name, Unit unit, bool wall) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e{MetricSnapshot::Kind::kHistogram, unit, wall, nullptr, nullptr,
                std::make_unique<Histogram>()};
        it = entries_.emplace(std::string(name), std::move(e)).first;
    } else if (it->second.kind != MetricSnapshot::Kind::kHistogram) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' already registered with a different kind");
    }
    return *it->second.histogram;
}

Snapshot Registry::snapshot() const {
    std::lock_guard lock(mu_);
    Snapshot out;
    out.metrics.reserve(entries_.size());
    // std::map iterates in name order, which is the export order.
    for (const auto& [name, e] : entries_) {
        MetricSnapshot m;
        m.name = name;
        m.kind = e.kind;
        m.unit = e.unit;
        m.wall = e.wall;
        switch (e.kind) {
            case MetricSnapshot::Kind::kCounter:
                m.value = e.counter->value();
                break;
            case MetricSnapshot::Kind::kGauge:
                m.gauge_value = e.gauge->value();
                m.gauge_max = e.gauge->max();
                break;
            case MetricSnapshot::Kind::kHistogram:
                m.count = e.histogram->count();
                m.sum = e.histogram->sum();
                for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
                    if (auto n = e.histogram->bucket(b); n != 0)
                        m.buckets.emplace_back(std::uint32_t(b), n);
                break;
        }
        out.metrics.push_back(std::move(m));
    }
    return out;
}

void Registry::reset() {
    std::lock_guard lock(mu_);
    for (auto& [name, e] : entries_) {
        if (e.counter) e.counter->reset();
        if (e.gauge) e.gauge->reset();
        if (e.histogram) e.histogram->reset();
    }
}

std::size_t Registry::size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
}

Counter& counter(std::string_view name, Unit unit) {
    return Registry::global().counter(name, unit);
}
Gauge& gauge(std::string_view name, Unit unit) {
    return Registry::global().gauge(name, unit);
}
Histogram& histogram(std::string_view name, Unit unit, bool wall) {
    return Registry::global().histogram(name, unit, wall);
}

}  // namespace kooza::obs
