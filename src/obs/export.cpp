#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace kooza::obs {

namespace {

const char* kind_name(MetricSnapshot::Kind k) {
    switch (k) {
        case MetricSnapshot::Kind::kGauge: return "gauge";
        case MetricSnapshot::Kind::kHistogram: return "histogram";
        case MetricSnapshot::Kind::kCounter: break;
    }
    return "counter";
}

// %.17g round-trips doubles exactly and is locale-independent for the
// plain numbers we emit, keeping exports byte-stable.
std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    return buf;
}

}  // namespace

std::string to_json(const Snapshot& snap, const ExportOptions& opts) {
    std::string out;
    out += "{\n  \"schema\": \"kooza.metrics/1\",\n  \"metrics\": [";
    bool first = true;
    for (const auto& m : snap.metrics) {
        if (m.wall && !opts.include_wall) continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + m.name + "\", \"kind\": \"" +
               kind_name(m.kind) + "\", \"unit\": \"" + to_string(m.unit) +
               "\", \"wall\": " + (m.wall ? "true" : "false");
        switch (m.kind) {
            case MetricSnapshot::Kind::kCounter:
                out += ", \"value\": " + fmt_u64(m.value);
                break;
            case MetricSnapshot::Kind::kGauge:
                out += ", \"value\": " + fmt_double(m.gauge_value) +
                       ", \"max\": " + fmt_double(m.gauge_max);
                break;
            case MetricSnapshot::Kind::kHistogram: {
                out += ", \"count\": " + fmt_u64(m.count) +
                       ", \"sum\": " + fmt_u64(m.sum) + ", \"buckets\": [";
                bool bf = true;
                for (const auto& [i, n] : m.buckets) {
                    if (!bf) out += ", ";
                    bf = false;
                    out += "[" + fmt_u64(i) + ", " + fmt_u64(n) + "]";
                }
                out += "]";
                break;
            }
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string to_csv(const Snapshot& snap, const ExportOptions& opts) {
    std::string out = "name,kind,unit,wall,value,max,count,sum,buckets\n";
    for (const auto& m : snap.metrics) {
        if (m.wall && !opts.include_wall) continue;
        out += m.name;
        out += ',';
        out += kind_name(m.kind);
        out += ',';
        out += to_string(m.unit);
        out += ',';
        out += m.wall ? '1' : '0';
        out += ',';
        switch (m.kind) {
            case MetricSnapshot::Kind::kCounter:
                out += fmt_u64(m.value) + ",,,,";
                break;
            case MetricSnapshot::Kind::kGauge:
                out += fmt_double(m.gauge_value) + "," + fmt_double(m.gauge_max) +
                       ",,,";
                break;
            case MetricSnapshot::Kind::kHistogram: {
                out += ",," + fmt_u64(m.count) + "," + fmt_u64(m.sum) + ",";
                bool bf = true;
                for (const auto& [i, n] : m.buckets) {
                    if (!bf) out += ';';
                    bf = false;
                    out += fmt_u64(i) + ":" + fmt_u64(n);
                }
                break;
            }
        }
        out += '\n';
    }
    return out;
}

void write_metrics(const Snapshot& snap, const std::filesystem::path& path,
                   const ExportOptions& opts) {
    if (path.has_parent_path())
        std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("obs: cannot open " + path.string());
    out << (path.extension() == ".csv" ? to_csv(snap, opts) : to_json(snap, opts));
}

namespace {

[[noreturn]] void bad_file(const std::filesystem::path& path,
                           const std::string& why) {
    throw std::runtime_error("obs: malformed metrics file " + path.string() +
                             ": " + why);
}

Unit parse_unit(std::string_view s) {
    if (s == "bytes") return Unit::kBytes;
    if (s == "ns") return Unit::kNanoseconds;
    return Unit::kCount;
}

MetricSnapshot::Kind parse_kind(std::string_view s, bool& ok) {
    ok = true;
    if (s == "counter") return MetricSnapshot::Kind::kCounter;
    if (s == "gauge") return MetricSnapshot::Kind::kGauge;
    if (s == "histogram") return MetricSnapshot::Kind::kHistogram;
    ok = false;
    return MetricSnapshot::Kind::kCounter;
}

// Minimal scanner for the JSON we write ourselves — it does not aim to
// parse arbitrary JSON, only the canonical kooza.metrics/1 layout.
class JsonScan {
public:
    explicit JsonScan(std::string_view text) : text_(text) {}

    bool find_object_start() {
        pos_ = text_.find('{', pos_);
        if (pos_ == std::string_view::npos) return false;
        ++pos_;
        return true;
    }

    /// Value of a `"key": <scalar or string>` pair inside the current
    /// object region, empty when absent.
    std::string_view field(std::string_view key, std::size_t end) const {
        const std::string needle = "\"" + std::string(key) + "\":";
        auto at = text_.find(needle, pos_);
        if (at == std::string_view::npos || at >= end) return {};
        at += needle.size();
        while (at < end && text_[at] == ' ') ++at;
        if (at < end && text_[at] == '"') {
            auto close = text_.find('"', at + 1);
            if (close == std::string_view::npos || close > end) return {};
            return text_.substr(at + 1, close - at - 1);
        }
        auto stop = text_.find_first_of(",}]", at);
        if (stop == std::string_view::npos || stop > end) stop = end;
        return text_.substr(at, stop - at);
    }

    std::size_t pos() const { return pos_; }
    std::size_t object_end() const {
        auto e = text_.find('}', pos_);
        return e == std::string_view::npos ? text_.size() : e;
    }
    std::string_view text() const { return text_; }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

std::uint64_t to_u64(std::string_view s) {
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9') break;
        v = v * 10 + std::uint64_t(c - '0');
    }
    return v;
}

Snapshot load_json(const std::filesystem::path& path, const std::string& text) {
    Snapshot snap;
    if (text.find("\"kooza.metrics/1\"") == std::string::npos)
        bad_file(path, "missing kooza.metrics/1 schema tag");
    auto list = text.find("\"metrics\"");
    if (list == std::string::npos) bad_file(path, "missing metrics array");
    std::size_t pos = text.find('[', list);
    if (pos == std::string::npos) bad_file(path, "missing metrics array");
    while (true) {
        auto open = text.find('{', pos);
        if (open == std::string::npos) break;
        auto close = text.find('}', open);
        if (close == std::string::npos) bad_file(path, "unterminated object");
        JsonScan scan(std::string_view(text).substr(open, close - open + 1));
        scan.find_object_start();
        const auto end = scan.text().size();
        MetricSnapshot m;
        m.name = std::string(scan.field("name", end));
        if (m.name.empty()) bad_file(path, "metric without a name");
        bool kind_ok = false;
        m.kind = parse_kind(scan.field("kind", end), kind_ok);
        if (!kind_ok) bad_file(path, "unknown kind for " + m.name);
        m.unit = parse_unit(scan.field("unit", end));
        m.wall = scan.field("wall", end) == "true";
        switch (m.kind) {
            case MetricSnapshot::Kind::kCounter:
                m.value = to_u64(scan.field("value", end));
                break;
            case MetricSnapshot::Kind::kGauge:
                m.gauge_value = std::strtod(
                    std::string(scan.field("value", end)).c_str(), nullptr);
                m.gauge_max = std::strtod(
                    std::string(scan.field("max", end)).c_str(), nullptr);
                break;
            case MetricSnapshot::Kind::kHistogram:
                m.count = to_u64(scan.field("count", end));
                m.sum = to_u64(scan.field("sum", end));
                break;
        }
        if (m.kind == MetricSnapshot::Kind::kHistogram) {
            auto barr = text.find("\"buckets\"", open);
            if (barr == std::string::npos || barr > close)
                bad_file(path, "histogram without buckets: " + m.name);
            auto bopen = text.find('[', barr);
            // The bucket array nests "[i, n]" pairs: balance brackets to
            // find where the outer array closes.
            std::size_t depth = 1, at = bopen + 1;
            while (at < text.size() && depth > 0) {
                if (text[at] == '[') ++depth;
                else if (text[at] == ']') --depth;
                ++at;
            }
            const std::size_t bclose = at - 1;
            std::string_view arr(text.data() + bopen + 1, bclose - bopen - 1);
            std::size_t p = 0;
            while ((p = arr.find('[', p)) != std::string_view::npos) {
                auto comma = arr.find(',', p);
                auto pe = arr.find(']', p);
                if (comma == std::string_view::npos ||
                    pe == std::string_view::npos || comma > pe)
                    bad_file(path, "malformed bucket pair in " + m.name);
                auto idx = to_u64(arr.substr(p + 1, comma - p - 1));
                auto sv = arr.substr(comma + 1, pe - comma - 1);
                while (!sv.empty() && sv.front() == ' ') sv.remove_prefix(1);
                m.buckets.emplace_back(std::uint32_t(idx), to_u64(sv));
                p = pe + 1;
            }
            close = text.find('}', bclose);
            if (close == std::string::npos) bad_file(path, "unterminated object");
        }
        snap.metrics.push_back(std::move(m));
        pos = close + 1;
        // Stop at the end of the metrics array.
        auto next_delim = text.find_first_not_of(" \n\r\t,", pos);
        if (next_delim == std::string::npos || text[next_delim] == ']') break;
    }
    return snap;
}

std::vector<std::string> split(std::string_view line, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        auto at = line.find(sep, start);
        if (at == std::string_view::npos) {
            out.emplace_back(line.substr(start));
            return out;
        }
        out.emplace_back(line.substr(start, at - start));
        start = at + 1;
    }
}

Snapshot load_csv(const std::filesystem::path& path, const std::string& text) {
    Snapshot snap;
    std::istringstream in(text);
    std::string line;
    bool header = true;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (header) {
            header = false;
            continue;
        }
        auto f = split(line, ',');
        if (f.size() != 9) bad_file(path, "expected 9 fields, got line: " + line);
        MetricSnapshot m;
        m.name = f[0];
        bool kind_ok = false;
        m.kind = parse_kind(f[1], kind_ok);
        if (!kind_ok) bad_file(path, "unknown kind " + f[1]);
        m.unit = parse_unit(f[2]);
        m.wall = f[3] == "1";
        switch (m.kind) {
            case MetricSnapshot::Kind::kCounter:
                m.value = to_u64(f[4]);
                break;
            case MetricSnapshot::Kind::kGauge:
                m.gauge_value = std::strtod(f[4].c_str(), nullptr);
                m.gauge_max = std::strtod(f[5].c_str(), nullptr);
                break;
            case MetricSnapshot::Kind::kHistogram:
                m.count = to_u64(f[6]);
                m.sum = to_u64(f[7]);
                for (const auto& pair : split(f[8], ';')) {
                    if (pair.empty()) continue;
                    auto colon = pair.find(':');
                    if (colon == std::string::npos)
                        bad_file(path, "malformed bucket " + pair);
                    m.buckets.emplace_back(
                        std::uint32_t(to_u64(pair.substr(0, colon))),
                        to_u64(pair.substr(colon + 1)));
                }
                break;
        }
        snap.metrics.push_back(std::move(m));
    }
    return snap;
}

}  // namespace

Snapshot load_metrics(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("obs: cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (path.extension() == ".csv") return load_csv(path, text);
    return load_json(path, text);
}

double histogram_quantile(const MetricSnapshot& m, double q) {
    if (m.count == 0 || m.buckets.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Continuous rank in [1, count]; bucket b >= 1 covers [2^(b-1), 2^b)
    // with its mass spread uniformly, so the estimate interpolates to the
    // rank's fraction of the bucket instead of jumping to its upper bound
    // (which overstated every percentile by up to 2x).
    const double target = q * double(m.count - 1) + 1.0;
    std::uint64_t seen = 0;
    for (const auto& [b, n] : m.buckets) {
        if (n == 0) continue;
        if (double(seen) + double(n) >= target) {
            if (b == 0) return 0.0;
            const double lo = std::ldexp(1.0, int(b) - 1);
            const double hi = std::ldexp(1.0, int(b));
            const double f =
                std::clamp((target - double(seen)) / double(n), 0.0, 1.0);
            return lo + f * (hi - lo);
        }
        seen += n;
    }
    return std::ldexp(1.0, int(std::min<std::uint32_t>(m.buckets.back().first, 64)));
}

namespace {

std::string human_value(double v, Unit unit) {
    char buf[64];
    switch (unit) {
        case Unit::kBytes:
            if (v >= 1 << 20)
                std::snprintf(buf, sizeof buf, "%.2f MiB", v / double(1 << 20));
            else if (v >= 1 << 10)
                std::snprintf(buf, sizeof buf, "%.2f KiB", v / double(1 << 10));
            else
                std::snprintf(buf, sizeof buf, "%.0f B", v);
            return buf;
        case Unit::kNanoseconds:
            if (v >= 1e9)
                std::snprintf(buf, sizeof buf, "%.3f s", v / 1e9);
            else if (v >= 1e6)
                std::snprintf(buf, sizeof buf, "%.3f ms", v / 1e6);
            else if (v >= 1e3)
                std::snprintf(buf, sizeof buf, "%.3f us", v / 1e3);
            else
                std::snprintf(buf, sizeof buf, "%.0f ns", v);
            return buf;
        case Unit::kCount: break;
    }
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

std::string summarize(const Snapshot& snap) {
    std::string out;
    char buf[256];
    for (const auto& m : snap.metrics) {
        switch (m.kind) {
            case MetricSnapshot::Kind::kCounter:
                std::snprintf(buf, sizeof buf, "  %-44s %s\n", m.name.c_str(),
                              human_value(double(m.value), m.unit).c_str());
                break;
            case MetricSnapshot::Kind::kGauge:
                std::snprintf(buf, sizeof buf, "  %-44s %s (max %s)\n",
                              m.name.c_str(),
                              human_value(m.gauge_value, m.unit).c_str(),
                              human_value(m.gauge_max, m.unit).c_str());
                break;
            case MetricSnapshot::Kind::kHistogram:
                std::snprintf(
                    buf, sizeof buf,
                    "  %-44s n=%" PRIu64 " mean=%s p50~%s p95~%s p99~%s%s\n",
                    m.name.c_str(), m.count,
                    human_value(m.mean(), m.unit).c_str(),
                    human_value(histogram_quantile(m, 0.50), m.unit).c_str(),
                    human_value(histogram_quantile(m, 0.95), m.unit).c_str(),
                    human_value(histogram_quantile(m, 0.99), m.unit).c_str(),
                    m.wall ? " [wall]" : "");
                break;
        }
        out += buf;
    }
    return out;
}

}  // namespace kooza::obs
