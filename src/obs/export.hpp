// Snapshot serialization: JSON ("kooza.metrics/1" schema) and flat CSV,
// plus a loader and a human-readable summary used by kooza_inspect.
#pragma once

#include <filesystem>
#include <string>

#include "obs/metrics.hpp"

namespace kooza::obs {

struct ExportOptions {
    /// Include wall-clock-derived metrics. Deterministic exports (golden
    /// files, 1-vs-N comparisons) should set this to false.
    bool include_wall = true;
};

/// Serialize a snapshot as JSON. Output is canonical: metrics sorted by
/// name, fixed key order, doubles printed with %.17g — equal snapshots
/// produce byte-identical text.
[[nodiscard]] std::string to_json(const Snapshot& snap, const ExportOptions& opts = {});

/// Serialize a snapshot as flat CSV:
///   name,kind,unit,wall,value,max,count,sum,buckets
/// where buckets is "i:n" pairs joined with ';'.
[[nodiscard]] std::string to_csv(const Snapshot& snap, const ExportOptions& opts = {});

/// Write a snapshot to `path`, picking the format from the extension
/// (".csv" → CSV, anything else → JSON). Creates parent directories.
void write_metrics(const Snapshot& snap, const std::filesystem::path& path,
                   const ExportOptions& opts = {});

/// Parse a file previously written by write_metrics (either format).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Snapshot load_metrics(const std::filesystem::path& path);

/// Quantile (q in [0, 1]) of a histogram snapshot, linearly interpolated
/// within its covering log2 bucket. The old export reported the bucket's
/// upper bound, biasing every exported percentile high by up to 2x; with
/// mass spread uniformly across [2^(b-1), 2^b) the estimate lands inside
/// the bucket at the target rank's fraction instead.
[[nodiscard]] double histogram_quantile(const MetricSnapshot& m, double q);

/// Human-readable one-metric-per-line summary (kooza_inspect --metrics).
/// Histogram lines include count, mean, and approximate p50/p95/p99
/// derived from the log2 buckets via histogram_quantile().
[[nodiscard]] std::string summarize(const Snapshot& snap);

}  // namespace kooza::obs
