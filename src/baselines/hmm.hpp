// HMM storage baseline: Harrison et al., "Storage Workload Modelling by
// Hidden Markov Models" (PAPERS.md) — the citable hidden-state competitor
// to KOOZA's observable Markov chains in the cross-examination.
//
// The request stream is discretized into two observation streams —
// log inter-arrival times and log2 request sizes — each cut into
// fixed-length segments (Harrison's per-epoch sequences) and fitted as a
// multi-sequence ECHMM (markov::Echmm, Baum-Welch). The size HMM's hidden
// states double as workload regimes: a per-state read probability is
// estimated by Viterbi-decoding the training segments, so generation ties
// the request mix to the regime. Features the HMMs do not model (network
// bytes, CPU busy time, memory traffic, bank, LBN) fall back to per-type
// means, like the in-depth baseline — the HMM's contribution is the
// *temporal* texture (regime persistence, arrival burstiness) plus the
// marginal size distribution, at a parameter budget far under KOOZA's
// annotated chains.
//
// Training has two equivalent paths:
//   * train(ts)            — materialized TraceSet;
//   * train_streaming(dir) — records read chunk-by-chunk through
//     trace::ChunkedReader and folded into trace::FeatureAccumulator
//     (O(requests) memory, never a whole TraceSet), then Baum-Welch
//     accumulates its EM sufficient statistics one segment at a time
//     through Echmm::Fitter.
// Both produce byte-identical models on the same capture (the streaming
// stress test the ROADMAP's chunked-training item calls for).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/synthetic.hpp"
#include "markov/echmm.hpp"
#include "sim/rng.hpp"
#include "trace/features.hpp"
#include "trace/traceset.hpp"

namespace kooza::baselines {

struct HmmConfig {
    /// Hidden states per ECHMM (the --hmm-states knob; Harrison uses a
    /// handful of regimes).
    std::size_t n_states = 4;
    std::size_t max_iter = 40;
    double tol = 1e-4;
    /// Seed for randomized Baum-Welch restarts; with the default
    /// n_restarts = 1 the fit is deterministic regardless of seed
    /// (Echmm::fit's restart-0 byte-compat contract).
    std::uint64_t seed = 1;
    std::size_t n_restarts = 1;
    /// Requests per Baum-Welch observation sequence. Segments are the
    /// multi-sequence unit *and* the chunk the streaming fit accumulates
    /// EM statistics over; inter-arrival gaps never cross a boundary.
    std::size_t segment_length = 256;
};

class HmmModel {
public:
    /// Per-type scalar means for the features the HMMs do not model.
    struct FeatureMeans {
        double network_bytes = 0.0;
        double cpu_busy = 0.0;
        double memory_bytes = 0.0;
        trace::IoType memory_type = trace::IoType::kRead;
        double bank = 0.0;
        double lbn = 0.0;
        std::size_t count = 0;  ///< training requests of this type
    };

    /// Train from a materialized trace set. Throws std::invalid_argument
    /// when the trace has too few completed requests for `n_states`.
    static HmmModel train(const trace::TraceSet& ts, HmmConfig cfg = {});

    /// Train from a kooza.trace/1 capture directory without materializing
    /// the TraceSet (see file comment). Byte-identical to train() on the
    /// same capture. Throws std::runtime_error on a malformed capture.
    static HmmModel train_streaming(const std::filesystem::path& dir,
                                    HmmConfig cfg = {},
                                    std::size_t chunk_rows = std::size_t(1) << 16);

    /// Generate synthetic requests: arrival times from the inter-arrival
    /// HMM walk, sizes + request type from the size HMM walk (type via the
    /// per-state read probability), remaining features from the per-type
    /// means. Phase lists stay empty — the HMM carries no structure
    /// information, so replay stresses subsystems independently.
    [[nodiscard]] core::SyntheticWorkload generate(std::size_t count,
                                                   sim::Rng& rng) const;

    [[nodiscard]] const markov::Echmm& interarrival_hmm() const noexcept {
        return iat_hmm_;
    }
    [[nodiscard]] const markov::Echmm& size_hmm() const noexcept {
        return size_hmm_;
    }
    [[nodiscard]] double read_fraction() const noexcept { return read_fraction_; }
    /// P(read | size-HMM state), Laplace-smoothed.
    [[nodiscard]] std::span<const double> state_read_prob() const noexcept {
        return state_read_prob_;
    }
    [[nodiscard]] const FeatureMeans& means(trace::IoType t) const noexcept {
        return t == trace::IoType::kRead ? read_means_ : write_means_;
    }

    /// Both ECHMMs + per-state read probabilities + read fraction + the
    /// per-type feature means.
    [[nodiscard]] std::size_t parameter_count() const;
    /// Wall-clock seconds the two Baum-Welch fits took (training cost).
    [[nodiscard]] double fit_wall_seconds() const noexcept { return fit_seconds_; }
    [[nodiscard]] std::size_t segments_fitted() const noexcept { return segments_; }
    [[nodiscard]] const HmmConfig& config() const noexcept { return cfg_; }

    [[nodiscard]] std::string describe() const;

private:
    HmmModel(HmmConfig cfg, markov::Echmm iat, markov::Echmm size)
        : cfg_(cfg), iat_hmm_(std::move(iat)), size_hmm_(std::move(size)) {}

    /// Shared back-half of both training paths: everything derives from
    /// the (arrival-sorted) feature rows, so materialized and chunked
    /// training converge on identical inputs here.
    static HmmModel fit_from_features(
        const std::vector<trace::RequestFeatures>& features, HmmConfig cfg);

    HmmConfig cfg_;
    markov::Echmm iat_hmm_;
    markov::Echmm size_hmm_;
    std::vector<double> state_read_prob_;
    double read_fraction_ = 1.0;
    FeatureMeans read_means_;
    FeatureMeans write_means_;
    double fit_seconds_ = 0.0;
    std::size_t segments_ = 0;
};

}  // namespace kooza::baselines
