#include "baselines/inbreadth.hpp"

#include <sstream>

namespace kooza::baselines {

InBreadthModel InBreadthModel::train(const trace::TraceSet& ts,
                                     core::TrainerConfig cfg) {
    // Strip spans: the in-breadth pipeline never deployed request tracing.
    trace::TraceSet no_spans = ts;
    no_spans.spans.clear();
    cfg.fallback_structure = true;  // trainer inserts a placeholder queue
    if (cfg.workload_name == "workload") cfg.workload_name = "in-breadth";
    core::Trainer trainer(cfg);
    return InBreadthModel(trainer.train(no_spans));
}

core::SyntheticWorkload InBreadthModel::generate(std::size_t count,
                                                 sim::Rng& rng) const {
    core::Generator gen(model_);
    core::SyntheticWorkload w = gen.generate(count, rng);
    w.model_name = "in-breadth:" + model_.workload_name();
    // No time dependencies: drop the placeholder phase lists.
    for (auto& r : w.requests) r.phases.clear();
    return w;
}

std::size_t InBreadthModel::parameter_count() const {
    // The placeholder structure queues are not part of this model.
    std::size_t n = model_.parameter_count();
    if (model_.has_reads()) n -= model_.reads().structure.parameter_count();
    if (model_.has_writes()) n -= model_.writes().structure.parameter_count();
    return n;
}

std::string InBreadthModel::describe() const {
    std::ostringstream os;
    os << "InBreadthModel (4 subsystem models, no time dependencies), ~"
       << parameter_count() << " params";
    return os.str();
}

}  // namespace kooza::baselines
