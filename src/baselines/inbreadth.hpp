// In-breadth baseline: the four per-subsystem models *without* the
// structure queue (paper Section 3.1). It reproduces request features
// faithfully — each subsystem model is exactly KOOZA's — but carries no
// time dependencies, so replay can only stress the subsystems
// independently ("invalid stressing of the system, which renders the
// model inaccurate").
#pragma once

#include <cstddef>
#include <string>

#include "core/generator.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "sim/rng.hpp"

namespace kooza::baselines {

class InBreadthModel {
public:
    /// Train on a trace set. Span records are deliberately ignored — an
    /// in-breadth pipeline has no request-tracing infrastructure.
    static InBreadthModel train(const trace::TraceSet& ts,
                                core::TrainerConfig cfg = {});

    /// Generate synthetic requests. Phase lists are left empty: the model
    /// has no ordering information (the replayer then runs subsystems
    /// concurrently).
    [[nodiscard]] core::SyntheticWorkload generate(std::size_t count,
                                                   sim::Rng& rng) const;

    [[nodiscard]] const core::ServerModel& server_model() const noexcept {
        return model_;
    }
    [[nodiscard]] std::size_t parameter_count() const;
    [[nodiscard]] std::string describe() const;

private:
    explicit InBreadthModel(core::ServerModel model) : model_(std::move(model)) {}
    core::ServerModel model_;
};

}  // namespace kooza::baselines
