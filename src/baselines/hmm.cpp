#include "baselines/hmm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "trace/binary.hpp"

namespace kooza::baselines {

namespace {

/// Arrival gaps below this clamp to it before the log transform (ties in
/// simulated arrival times would otherwise produce log(0)).
constexpr double kMinGap = 1e-9;

struct HmmMetrics {
    obs::Counter& fits = obs::counter("baselines.hmm.fits_total");
    obs::Counter& requests = obs::counter("baselines.hmm.requests_total");
    obs::Histogram& fit_wall_ns = obs::histogram(
        "baselines.hmm.fit_wall_ns", obs::Unit::kNanoseconds, /*wall=*/true);
};

HmmMetrics& hmm_metrics() {
    static HmmMetrics m;
    return m;
}

double log2_size(std::uint64_t bytes) { return std::log2(double(bytes) + 1.0); }

/// Fixed-length segments of the arrival-sorted feature rows, turned into
/// the two observation streams. Segment boundaries are a function of row
/// index only, so any chunking of the record read produces identical
/// sequences.
struct Observations {
    std::vector<std::vector<double>> iat;   ///< log inter-arrival per segment
    std::vector<std::vector<double>> size;  ///< log2(bytes + 1) per segment
};

Observations segment(const std::vector<trace::RequestFeatures>& features,
                     std::size_t segment_length) {
    Observations obs;
    for (std::size_t start = 0; start < features.size(); start += segment_length) {
        const std::size_t end =
            std::min(features.size(), start + segment_length);
        std::vector<double> sizes;
        sizes.reserve(end - start);
        std::vector<double> gaps;
        gaps.reserve(end - start);
        for (std::size_t i = start; i < end; ++i) {
            sizes.push_back(log2_size(features[i].storage_bytes));
            if (i > start)
                gaps.push_back(std::log(std::max(
                    features[i].arrival - features[i - 1].arrival, kMinGap)));
        }
        obs.size.push_back(std::move(sizes));
        if (!gaps.empty()) obs.iat.push_back(std::move(gaps));
    }
    return obs;
}

}  // namespace

HmmModel HmmModel::fit_from_features(
    const std::vector<trace::RequestFeatures>& features, HmmConfig cfg) {
    if (cfg.n_states == 0)
        throw std::invalid_argument("HmmModel: n_states must be >= 1");
    if (cfg.segment_length < 2)
        throw std::invalid_argument("HmmModel: segment_length must be >= 2");
    // Each segment loses one inter-arrival observation, so demand enough
    // rows that *both* pooled streams satisfy Echmm::fit's 2*n_states.
    if (features.size() < 2 * cfg.n_states + 2)
        throw std::invalid_argument(
            "HmmModel::train: too few completed requests for state count");

    const auto obs = segment(features, cfg.segment_length);
    const auto t0 = std::chrono::steady_clock::now();
    auto iat = markov::Echmm::fit(obs.iat, cfg.n_states, cfg.max_iter, cfg.tol,
                                  cfg.seed, cfg.n_restarts);
    auto size = markov::Echmm::fit(obs.size, cfg.n_states, cfg.max_iter, cfg.tol,
                                   cfg.seed, cfg.n_restarts);
    const auto t1 = std::chrono::steady_clock::now();

    HmmModel m(cfg, std::move(iat), std::move(size));
    m.segments_ = obs.size.size();
    m.fit_seconds_ =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();

    // Per-state request mix: Viterbi-decode each size segment under the
    // fitted model and count read requests per hidden state.
    std::vector<std::size_t> reads(cfg.n_states, 0), total(cfg.n_states, 0);
    std::size_t n_reads = 0;
    std::size_t seg = 0;
    for (std::size_t start = 0; start < features.size();
         start += cfg.segment_length, ++seg) {
        const auto path = m.size_hmm_.viterbi(obs.size[seg]);
        for (std::size_t i = 0; i < path.size(); ++i) {
            const auto& f = features[start + i];
            ++total[path[i]];
            if (f.storage_type == trace::IoType::kRead) {
                ++reads[path[i]];
                ++n_reads;
            }
        }
    }
    m.read_fraction_ = double(n_reads) / double(features.size());
    m.state_read_prob_.resize(cfg.n_states);
    for (std::size_t s = 0; s < cfg.n_states; ++s)  // Laplace-smoothed
        m.state_read_prob_[s] =
            (double(reads[s]) + 1.0) / (double(total[s]) + 2.0);

    // Per-type means for the unmodelled features.
    auto build_means = [&](trace::IoType type) {
        FeatureMeans fm;
        std::size_t mem_writes = 0;
        for (const auto& f : features) {
            if (f.storage_type != type) continue;
            fm.network_bytes += double(f.network_bytes);
            fm.cpu_busy += f.cpu_busy_seconds;
            fm.memory_bytes += double(f.memory_bytes);
            fm.bank += double(f.first_bank);
            fm.lbn += double(f.first_lbn);
            if (f.memory_type == trace::IoType::kWrite) ++mem_writes;
            ++fm.count;
        }
        if (fm.count > 0) {
            const double n = double(fm.count);
            fm.network_bytes /= n;
            fm.cpu_busy /= n;
            fm.memory_bytes /= n;
            fm.bank /= n;
            fm.lbn /= n;
            fm.memory_type = 2 * mem_writes > fm.count ? trace::IoType::kWrite
                                                       : trace::IoType::kRead;
        }
        return fm;
    };
    m.read_means_ = build_means(trace::IoType::kRead);
    m.write_means_ = build_means(trace::IoType::kWrite);
    // The smoothed per-state mix can emit a type the training trace never
    // showed; fall back to the observed type's demands rather than zeros.
    if (m.read_means_.count == 0) {
        m.read_means_ = m.write_means_;
        m.read_means_.count = 0;  // count stays honest: type unseen in training
    }
    if (m.write_means_.count == 0) {
        m.write_means_ = m.read_means_;
        m.write_means_.count = 0;
    }

    hmm_metrics().fits.add();
    hmm_metrics().requests.add(features.size());
    hmm_metrics().fit_wall_ns.observe_seconds(m.fit_seconds_);
    return m;
}

HmmModel HmmModel::train(const trace::TraceSet& ts, HmmConfig cfg) {
    return fit_from_features(trace::extract_features(ts), cfg);
}

HmmModel HmmModel::train_streaming(const std::filesystem::path& dir, HmmConfig cfg,
                                   std::size_t chunk_rows) {
    if (chunk_rows == 0)
        throw std::invalid_argument(
            "HmmModel::train_streaming: chunk_rows must be >= 1");
    trace::ChunkedReader reader(dir);
    trace::FeatureAccumulator facc;
    trace::TraceSet chunk;
    const auto for_chunks = [&](trace::StreamId s, auto&& fn) {
        const std::uint64_t total = reader.rows(s);
        for (std::uint64_t off = 0; off < total; off += chunk_rows) {
            chunk = trace::TraceSet{};
            reader.read_rows(s, off,
                             std::min<std::uint64_t>(chunk_rows, total - off), chunk);
            fn(chunk);
        }
    };
    // Same stream feed order as Trainer::train_streaming / the in-memory
    // extract_features pass, so the finished rows are identical. Spans and
    // failures carry nothing this model consumes.
    for_chunks(trace::StreamId::kNetwork, [&](const trace::TraceSet& c) {
        for (const auto& r : c.network) facc.observe(r);
    });
    for_chunks(trace::StreamId::kCpu, [&](const trace::TraceSet& c) {
        for (const auto& r : c.cpu) facc.observe(r);
    });
    for_chunks(trace::StreamId::kMemory, [&](const trace::TraceSet& c) {
        for (const auto& r : c.memory) facc.observe(r);
    });
    for_chunks(trace::StreamId::kStorage, [&](const trace::TraceSet& c) {
        for (const auto& r : c.storage) facc.observe(r);
    });
    for_chunks(trace::StreamId::kRequests, [&](const trace::TraceSet& c) {
        for (const auto& r : c.requests) facc.observe(r);
    });
    return fit_from_features(facc.finish(), cfg);
}

core::SyntheticWorkload HmmModel::generate(std::size_t count, sim::Rng& rng) const {
    if (count == 0) throw std::invalid_argument("HmmModel::generate: count 0");
    core::SyntheticWorkload w;
    w.model_name = "hmm";
    w.requests.reserve(count);

    // Arrival times: one inter-arrival HMM walk (log-space observations).
    const auto log_gaps = iat_hmm_.generate(count, rng);

    // Size + type: walk the size HMM manually so the hidden state is
    // visible to the per-state read probability.
    const std::size_t n = size_hmm_.n_states();
    std::vector<std::vector<double>> rows(n, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) rows[i][j] = size_hmm_.transition(i, j);

    double t = 0.0;
    std::size_t state = rng.weighted_index(size_hmm_.initial());
    for (std::size_t i = 0; i < count; ++i) {
        if (i > 0) state = rng.weighted_index(rows[state]);
        const double x = std::clamp(
            rng.normal(size_hmm_.emission_mean(state),
                       size_hmm_.emission_stddev(state)),
            0.0, 63.0);
        const bool is_read = rng.bernoulli(state_read_prob_[state]);
        const auto type = is_read ? trace::IoType::kRead : trace::IoType::kWrite;
        const auto& fm = means(type);

        core::SyntheticRequest r;
        t += std::exp(std::clamp(log_gaps[i], -40.0, 40.0));
        r.time = t;
        r.type = type;
        r.storage_bytes =
            std::uint64_t(std::llround(std::max(std::exp2(x) - 1.0, 0.0)));
        r.storage_type = type;
        r.network_bytes = std::uint64_t(std::llround(fm.network_bytes));
        r.cpu_busy_seconds = fm.cpu_busy;
        r.memory_bytes = std::uint64_t(std::llround(fm.memory_bytes));
        r.memory_type = fm.memory_type;
        r.bank = std::uint32_t(std::llround(fm.bank));
        r.lbn = std::uint64_t(std::llround(fm.lbn));
        w.requests.push_back(std::move(r));
    }
    return w;
}

std::size_t HmmModel::parameter_count() const {
    std::size_t params = iat_hmm_.parameter_count() + size_hmm_.parameter_count() +
                         state_read_prob_.size() + 1;  // + read fraction
    if (read_means_.count > 0) params += 6;
    if (write_means_.count > 0) params += 6;
    return params;
}

std::string HmmModel::describe() const {
    std::ostringstream os;
    os << "HmmModel (Harrison-style Baum-Welch HMM over inter-arrival/size "
          "streams), "
       << cfg_.n_states << " states, " << parameter_count() << " params, "
       << segments_ << " segments, iat ll=" << iat_hmm_.training_log_likelihood()
       << ", size ll=" << size_hmm_.training_log_likelihood();
    return os.str();
}

}  // namespace kooza::baselines
