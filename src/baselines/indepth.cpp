#include "baselines/indepth.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/fitting.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"

namespace kooza::baselines {

InDepthModel::InDepthModel(std::unique_ptr<queueing::ArrivalProcess> arrivals,
                           double read_fraction, std::optional<TypeData> read,
                           std::optional<TypeData> write)
    : arrivals_(std::move(arrivals)),
      read_fraction_(read_fraction),
      read_(std::move(read)),
      write_(std::move(write)) {}

InDepthModel InDepthModel::train(const trace::TraceSet& ts, double ks_threshold) {
    if (ts.spans.empty())
        throw std::invalid_argument("InDepthModel::train: no spans in trace");
    const auto features = trace::extract_features(ts);
    if (features.empty())
        throw std::invalid_argument("InDepthModel::train: no completed requests");

    // Arrival process (same recipe KOOZA's network sub-model uses).
    std::vector<double> arrivals = trace::column_arrival(features);
    std::sort(arrivals.begin(), arrivals.end());
    std::unique_ptr<queueing::ArrivalProcess> arrival_model;
    if (arrivals.size() < 3) {
        arrival_model = std::make_unique<queueing::PoissonArrivals>(1.0);
    } else {
        std::vector<double> gaps(arrivals.size() - 1);
        for (std::size_t i = 1; i < arrivals.size(); ++i)
            gaps[i - 1] = std::max(arrivals[i] - arrivals[i - 1], 1e-12);
        auto exp_fit = stats::fit_exponential(gaps);
        if (stats::ks_statistic(gaps, *exp_fit) <= 0.1)
            arrival_model =
                std::make_unique<queueing::PoissonArrivals>(exp_fit->lambda());
        else
            arrival_model = std::make_unique<queueing::TraceArrivals>(gaps);
    }

    std::size_t n_reads = 0;
    for (const auto& f : features)
        if (f.storage_type == trace::IoType::kRead) ++n_reads;
    const double read_fraction = double(n_reads) / double(features.size());

    auto build = [&](trace::IoType type) -> std::optional<TypeData> {
        std::vector<trace::TraceId> ids;
        Means m;
        std::size_t n = 0, mem_writes = 0;
        for (const auto& f : features) {
            if (f.storage_type != type) continue;
            ids.push_back(f.request_id);
            m.network_bytes += double(f.network_bytes);
            m.cpu_busy += f.cpu_busy_seconds;
            m.memory_bytes += double(f.memory_bytes);
            m.storage_bytes += double(f.storage_bytes);
            m.lbn += double(f.first_lbn);
            m.bank += double(f.first_bank);
            if (f.memory_type == trace::IoType::kWrite) ++mem_writes;
            ++n;
        }
        if (n == 0) return std::nullopt;
        m.network_bytes /= double(n);
        m.cpu_busy /= double(n);
        m.memory_bytes /= double(n);
        m.storage_bytes /= double(n);
        m.lbn /= double(n);
        m.bank /= double(n);
        m.memory_type = 2 * mem_writes > n ? trace::IoType::kWrite : trace::IoType::kRead;
        core::StructureQueue sq = core::StructureQueue::fit(ts.spans, ids, ks_threshold);
        return TypeData{std::move(sq), m};
    };

    auto read = build(trace::IoType::kRead);
    auto write = build(trace::IoType::kWrite);
    if (!read && !write)
        throw std::invalid_argument("InDepthModel::train: no request types");
    return InDepthModel(std::move(arrival_model), read_fraction, std::move(read),
                        std::move(write));
}

const InDepthModel::TypeData& InDepthModel::type_data(trace::IoType t) const {
    const auto& opt = t == trace::IoType::kRead ? read_ : write_;
    if (!opt) throw std::logic_error("InDepthModel: type not trained");
    return *opt;
}

const core::StructureQueue& InDepthModel::read_structure() const {
    return type_data(trace::IoType::kRead).structure;
}
const core::StructureQueue& InDepthModel::write_structure() const {
    return type_data(trace::IoType::kWrite).structure;
}

std::vector<double> InDepthModel::predict_latencies(std::size_t count,
                                                    sim::Rng& rng) const {
    if (count == 0)
        throw std::invalid_argument("InDepthModel::predict_latencies: count 0");
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const bool is_read =
            read_ && (!write_ || rng.bernoulli(read_fraction_));
        const auto& td = type_data(is_read ? trace::IoType::kRead
                                           : trace::IoType::kWrite);
        const auto& phases = td.structure.sample(rng);
        double latency = 0.0;
        for (const auto& p : phases)
            latency += std::max(0.0, td.structure.phase_duration(p).sample(rng));
        out.push_back(latency);
    }
    return out;
}

core::SyntheticWorkload InDepthModel::generate(std::size_t count, sim::Rng& rng) const {
    if (count == 0) throw std::invalid_argument("InDepthModel::generate: count 0");
    core::SyntheticWorkload w;
    w.model_name = "in-depth";
    w.requests.reserve(count);
    auto arrivals = arrivals_->clone();
    arrivals->reset();
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        t += arrivals->next_interarrival(rng);
        const bool is_read = read_ && (!write_ || rng.bernoulli(read_fraction_));
        const auto type = is_read ? trace::IoType::kRead : trace::IoType::kWrite;
        const auto& td = type_data(type);
        core::SyntheticRequest r;
        r.time = t;
        r.type = type;
        r.network_bytes = std::uint64_t(std::llround(td.means.network_bytes));
        r.cpu_busy_seconds = td.means.cpu_busy;
        r.memory_bytes = std::uint64_t(std::llround(td.means.memory_bytes));
        r.memory_type = td.means.memory_type;
        r.bank = std::uint32_t(std::llround(td.means.bank));
        r.storage_bytes = std::uint64_t(std::llround(td.means.storage_bytes));
        r.storage_type = type;
        r.lbn = std::uint64_t(std::llround(td.means.lbn));
        r.phases = td.structure.sample(rng);
        w.requests.push_back(std::move(r));
    }
    return w;
}

std::size_t InDepthModel::parameter_count() const {
    std::size_t n = 2;
    if (read_) n += read_->structure.parameter_count() + 7;   // + feature means
    if (write_) n += write_->structure.parameter_count() + 7;
    return n;
}

std::string InDepthModel::describe() const {
    std::ostringstream os;
    os << "InDepthModel (arrival process + phase structure + mean demands), ~"
       << parameter_count() << " params; arrivals: " << arrivals_->describe();
    return os.str();
}

}  // namespace kooza::baselines
