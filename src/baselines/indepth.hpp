// In-depth baseline: a queueing-network-style model built purely from
// request tracing (paper Section 2.2/3.2) — arrival process, request mix,
// phase order and per-phase service-time distributions from span trees.
// It captures time dependencies and user behavior but no per-request
// subsystem features: generation can only emit *mean* feature values
// ("oversimplified, only emulating the arrival-rate of user-requests, but
// not the requests' access features").
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "core/structure.hpp"
#include "core/synthetic.hpp"
#include "queueing/arrival.hpp"
#include "sim/rng.hpp"
#include "trace/traceset.hpp"

namespace kooza::baselines {

class InDepthModel {
public:
    /// Train from request records + spans only (the per-subsystem record
    /// streams are reduced to scalar means, which is all the in-depth
    /// pipeline would collect). Throws if the trace has no spans at all.
    static InDepthModel train(const trace::TraceSet& ts, double ks_threshold = 0.08);

    /// Predicted end-to-end latencies for `count` requests: per request,
    /// sample a phase sequence and sum sampled phase durations — the
    /// queueing-model emulation (no device models involved).
    [[nodiscard]] std::vector<double> predict_latencies(std::size_t count,
                                                        sim::Rng& rng) const;

    /// Generate synthetic requests for device replay. Phase order is real;
    /// features are the per-type means (no distributions, no locality).
    [[nodiscard]] core::SyntheticWorkload generate(std::size_t count,
                                                   sim::Rng& rng) const;

    [[nodiscard]] const queueing::ArrivalProcess& arrivals() const noexcept {
        return *arrivals_;
    }
    [[nodiscard]] double read_fraction() const noexcept { return read_fraction_; }
    [[nodiscard]] bool has_reads() const noexcept { return read_.has_value(); }
    [[nodiscard]] bool has_writes() const noexcept { return write_.has_value(); }
    [[nodiscard]] const core::StructureQueue& read_structure() const;
    [[nodiscard]] const core::StructureQueue& write_structure() const;

    [[nodiscard]] std::size_t parameter_count() const;
    [[nodiscard]] std::string describe() const;

private:
    /// Scalar feature means for one request type.
    struct Means {
        double network_bytes = 0.0;
        double cpu_busy = 0.0;
        double memory_bytes = 0.0;
        trace::IoType memory_type = trace::IoType::kRead;
        double storage_bytes = 0.0;
        double lbn = 0.0;
        double bank = 0.0;
    };
    struct TypeData {
        core::StructureQueue structure;
        Means means;
    };

    InDepthModel(std::unique_ptr<queueing::ArrivalProcess> arrivals,
                 double read_fraction, std::optional<TypeData> read,
                 std::optional<TypeData> write);

    const TypeData& type_data(trace::IoType t) const;

    std::unique_ptr<queueing::ArrivalProcess> arrivals_;
    double read_fraction_;
    std::optional<TypeData> read_;
    std::optional<TypeData> write_;
};

}  // namespace kooza::baselines
