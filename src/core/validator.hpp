// Validator: compares original and synthetic workloads on the paper's
// axes — per-subsystem request features and end-to-end performance — and
// renders Table 2-style rows ("Variation" = relative deviation in %).
#pragma once

#include <string>
#include <vector>

#include "trace/features.hpp"

namespace kooza::core {

struct MetricRow {
    std::string subsystem;  ///< Network / Processor / Memory / Storage / Performance
    std::string metric;     ///< e.g. "Request Size"
    double original = 0.0;
    double synthetic = 0.0;
    /// Percent deviation when !absolute; deviation in `unit` when absolute.
    double variation_pct = 0.0;
    /// True when `original` is zero: a relative deviation is meaningless,
    /// so `variation_pct` holds the absolute difference instead.
    bool absolute = false;
    std::string unit;

    [[nodiscard]] std::string to_string() const;
};

struct ValidationReport {
    std::string model_name;
    std::vector<MetricRow> rows;
    /// Phases the replayer did not recognize while producing the
    /// synthetic side (core::ReplayResult::unknown_phases). Nonzero means
    /// part of each request's learned structure was silently skipped, so
    /// the synthetic columns understate the real cost: to_table() prints
    /// a warning row, and the replayer exports the same count as the
    /// core.replayer.unknown_phases_total metric.
    std::uint64_t unknown_phases = 0;

    /// Largest relative variation among feature rows. Excludes Performance
    /// rows and absolute-deviation rows (zero baselines have no percentage
    /// — mixing byte deviations into a percent max would be meaningless).
    [[nodiscard]] double max_feature_variation() const;
    /// Variation of the first Performance row — the mean-latency row,
    /// which compare_features/compare_single emit ahead of the quantile
    /// and goodput rows (0 if absent).
    [[nodiscard]] double latency_variation() const;

    /// Fixed-width text table (the Table 2 reproduction format).
    [[nodiscard]] std::string to_table() const;
};

/// Aggregate comparison: means of each feature column, mean latency plus
/// p50/p95/p99 latency-quantile rows, and goodput (completed requests per
/// second over the set's span). Empty sides are legal — rows degrade to
/// the zero-baseline stats::variation{} convention (admission control can
/// reject an entire phase) instead of throwing.
[[nodiscard]] ValidationReport compare_features(
    const std::vector<trace::RequestFeatures>& original,
    const std::vector<trace::RequestFeatures>& synthetic, std::string model_name);

/// Single-request comparison — one Table 2 block (one "User Request").
[[nodiscard]] ValidationReport compare_single(const trace::RequestFeatures& original,
                                              const trace::RequestFeatures& synthetic,
                                              std::string label);

/// Two-sample KS distance between the latency distributions (shape check
/// beyond the mean). Returns 0 when either side is empty.
[[nodiscard]] double latency_ks(const std::vector<trace::RequestFeatures>& original,
                                const std::vector<trace::RequestFeatures>& synthetic);

}  // namespace kooza::core
