// Replayer: executes a synthetic workload against the same device models
// a real chunkserver runs on, producing traces and end-to-end latencies
// that can be compared 1:1 with the original system's — the second half
// of the paper's validation loop (Table 2's "Synthetic Workload (KOOZA)"
// rows).
//
// Two modes implement the cross-examination:
//  * kStructured  — phases run in the request's learned order (KOOZA).
//  * kIndependent — every subsystem is stressed concurrently at arrival,
//    which is all a structure-less in-breadth model can justify; latency
//    degenerates to the slowest subsystem (the paper's "invalid stressing
//    of the system").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/synthetic.hpp"
#include "hw/cpu.hpp"
#include "hw/disk.hpp"
#include "hw/memory.hpp"
#include "hw/network.hpp"
#include "trace/traceset.hpp"

namespace kooza::core {

enum class ReplayMode { kStructured, kIndependent };

struct ReplayConfig {
    hw::DiskParams disk{};
    hw::CpuParams cpu{.cores = 2, .per_byte_cost = 1.0 / 1e9,
                      .per_request_overhead = 20e-6};
    hw::MemoryParams memory{};
    hw::SwitchParams net{};
    std::size_t n_servers = 1;      ///< synthetic requests round-robin over servers
    std::uint64_t control_bytes = 512;
    /// Split of a request's CPU busy time before/after I/O (take it from
    /// ServerModel::cpu_verify_fraction for a trained model).
    double cpu_verify_fraction = 0.4;
    std::uint64_t seed = 99;
};

struct ReplayResult {
    trace::TraceSet traces;
    std::vector<double> latencies;      ///< completion order
    std::uint64_t network_drops = 0;    ///< client-port frame drops (incast)
    std::uint64_t network_timeouts = 0;
    std::size_t unknown_phases = 0;     ///< phases the replayer didn't recognize

    /// Aggregate run statistics (for power/provisioning studies).
    double duration = 0.0;              ///< simulated seconds
    double mean_cpu_utilization = 0.0;  ///< across replay servers
    double mean_disk_utilization = 0.0;
};

class Replayer {
public:
    explicit Replayer(ReplayConfig cfg = {});

    [[nodiscard]] ReplayResult replay(const SyntheticWorkload& workload,
                                      ReplayMode mode = ReplayMode::kStructured) const;

    /// Sharded replay: requests are partitioned by their `server` tag and
    /// each server runs as an independent shard with its own sim::Engine
    /// and TraceSet, executed across the thread pool and merged by shard
    /// index — so results are bit-identical at any thread count. Unlike
    /// replay(), shards share nothing: no client-port fan-in contention
    /// and no cross-server replica forwarding (repl.forward stays on the
    /// shard). Use replay() when those couplings are the point (incast).
    [[nodiscard]] ReplayResult replay_sharded(
        const SyntheticWorkload& workload,
        ReplayMode mode = ReplayMode::kStructured) const;

    [[nodiscard]] const ReplayConfig& config() const noexcept { return cfg_; }

private:
    [[nodiscard]] ReplayResult replay_with_ids(const SyntheticWorkload& workload,
                                               ReplayMode mode,
                                               std::uint64_t base_id) const;

    ReplayConfig cfg_;
};

}  // namespace kooza::core
