// The structure queue — KOOZA's time-dependencies model.
//
// "a queue, configurable for each workload, that demonstrates the
// structure of the application, i.e. the order in which each model becomes
// active" (paper, Section 4). It is trained from Dapper-style span trees:
// each sampled request contributes its phase sequence; the queue stores
// the observed sequence variants with probabilities plus a duration
// distribution per phase name.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "stats/distributions.hpp"
#include "trace/span.hpp"

namespace kooza::core {

class StructureQueue {
public:
    /// One observed phase ordering and how often it occurred.
    struct Variant {
        std::vector<std::string> phases;
        double probability = 0.0;
        std::size_t count = 0;
    };

    /// Fit from span records, using only traces whose ids are in
    /// `trace_ids` (callers partition by request type). Root spans
    /// ("request") are excluded; phases are ordered by span start time.
    /// Throws if no usable trace is found.
    static StructureQueue fit(const std::vector<trace::Span>& spans,
                              std::span<const trace::TraceId> trace_ids,
                              double ks_threshold = 0.08);

    /// Build a single-variant queue from a known phase order (used as a
    /// fallback when span sampling recorded no trace of a request type).
    /// Phase durations are point masses at 0 — structure only.
    static StructureQueue canonical(std::vector<std::string> phases);

    /// Reassemble from previously-fitted parts (deserialization). Variant
    /// probabilities are renormalized from counts.
    static StructureQueue from_parts(
        std::vector<Variant> variants,
        std::map<std::string, std::unique_ptr<stats::Distribution>> durations,
        std::size_t trained_on);

    /// Variants sorted most-frequent first.
    [[nodiscard]] const std::vector<Variant>& variants() const noexcept {
        return variants_;
    }

    /// Most frequent phase ordering.
    [[nodiscard]] const std::vector<std::string>& dominant() const;

    /// Sample a phase ordering.
    [[nodiscard]] const std::vector<std::string>& sample(sim::Rng& rng) const;

    /// Duration distribution of a phase (over all variants). Throws on an
    /// unknown phase name.
    [[nodiscard]] const stats::Distribution& phase_duration(
        const std::string& phase) const;

    [[nodiscard]] bool has_phase(const std::string& phase) const noexcept;
    [[nodiscard]] std::vector<std::string> phase_names() const;

    /// Number of traces the queue was trained on.
    [[nodiscard]] std::size_t training_traces() const noexcept { return trained_on_; }

    /// Model size: variant entries + 2 params per phase-duration fit.
    [[nodiscard]] std::size_t parameter_count() const noexcept;

    [[nodiscard]] std::string describe() const;

private:
    StructureQueue() = default;

    std::vector<Variant> variants_;
    std::vector<double> weights_;  ///< aligned with variants_, for sampling
    std::map<std::string, std::unique_ptr<stats::Distribution>> durations_;
    std::size_t trained_on_ = 0;
};

/// Chunk-feedable span collector behind StructureQueue::fit. Spans arrive
/// in any order, one record or one chunk at a time, and are bucketed per
/// trace; fit() then reassembles the trees in ascending trace-id order —
/// the same order SpanTree::trace_ids yields — so a queue fitted from
/// chunked reads is identical to one fitted from the full span vector.
/// Memory is O(buffered spans): captures bound it with span sampling
/// (GfsConfig::span_sample_every), not with record caps.
class StructureAccumulator {
public:
    void observe(const trace::Span& s);
    void observe(const std::vector<trace::Span>& spans);
    void merge(StructureAccumulator&& other);

    /// Distinct trace ids buffered so far.
    [[nodiscard]] std::size_t trace_count() const noexcept { return spans_.size(); }
    [[nodiscard]] std::size_t span_count() const noexcept { return n_spans_; }

    /// Fit a queue from the buffered trees whose ids are in `trace_ids`.
    /// Same semantics and failure mode as StructureQueue::fit.
    [[nodiscard]] StructureQueue fit(std::span<const trace::TraceId> trace_ids,
                                     double ks_threshold = 0.08) const;

private:
    std::map<trace::TraceId, std::vector<trace::Span>> spans_;
    std::size_t n_spans_ = 0;
};

}  // namespace kooza::core
