// The structure queue — KOOZA's time-dependencies model.
//
// "a queue, configurable for each workload, that demonstrates the
// structure of the application, i.e. the order in which each model becomes
// active" (paper, Section 4). It is trained from Dapper-style span trees:
// each sampled request contributes its phase sequence; the queue stores
// the observed sequence variants with probabilities plus a duration
// distribution per phase name.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "stats/distributions.hpp"
#include "trace/span.hpp"

namespace kooza::core {

class StructureQueue {
public:
    /// One observed phase ordering and how often it occurred.
    struct Variant {
        std::vector<std::string> phases;
        double probability = 0.0;
        std::size_t count = 0;
    };

    /// Fit from span records, using only traces whose ids are in
    /// `trace_ids` (callers partition by request type). Root spans
    /// ("request") are excluded; phases are ordered by span start time.
    /// Throws if no usable trace is found.
    static StructureQueue fit(const std::vector<trace::Span>& spans,
                              std::span<const trace::TraceId> trace_ids,
                              double ks_threshold = 0.08);

    /// Build a single-variant queue from a known phase order (used as a
    /// fallback when span sampling recorded no trace of a request type).
    /// Phase durations are point masses at 0 — structure only.
    static StructureQueue canonical(std::vector<std::string> phases);

    /// Reassemble from previously-fitted parts (deserialization). Variant
    /// probabilities are renormalized from counts.
    static StructureQueue from_parts(
        std::vector<Variant> variants,
        std::map<std::string, std::unique_ptr<stats::Distribution>> durations,
        std::size_t trained_on);

    /// Variants sorted most-frequent first.
    [[nodiscard]] const std::vector<Variant>& variants() const noexcept {
        return variants_;
    }

    /// Most frequent phase ordering.
    [[nodiscard]] const std::vector<std::string>& dominant() const;

    /// Sample a phase ordering.
    [[nodiscard]] const std::vector<std::string>& sample(sim::Rng& rng) const;

    /// Duration distribution of a phase (over all variants). Throws on an
    /// unknown phase name.
    [[nodiscard]] const stats::Distribution& phase_duration(
        const std::string& phase) const;

    [[nodiscard]] bool has_phase(const std::string& phase) const noexcept;
    [[nodiscard]] std::vector<std::string> phase_names() const;

    /// Number of traces the queue was trained on.
    [[nodiscard]] std::size_t training_traces() const noexcept { return trained_on_; }

    /// Model size: variant entries + 2 params per phase-duration fit.
    [[nodiscard]] std::size_t parameter_count() const noexcept;

    [[nodiscard]] std::string describe() const;

private:
    StructureQueue() = default;

    std::vector<Variant> variants_;
    std::vector<double> weights_;  ///< aligned with variants_, for sampling
    std::map<std::string, std::unique_ptr<stats::Distribution>> durations_;
    std::size_t trained_on_ = 0;
};

}  // namespace kooza::core
