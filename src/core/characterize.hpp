// Workload characterization report.
//
// The survey half of the paper catalogs what a workload model must
// capture: arrival-rate distribution family (Feitelson's KS-based
// fitting), stationarity, self-similarity, burstiness and heavy tails
// (Feitelson '02), pseudoperiodicity and long-range dependence (Li '10),
// and a reduced feature space (PCA, Abrahao '04 / paper Section 4).
// characterize() computes all of them from a TraceSet in one pass — the
// pre-modeling reconnaissance a practitioner runs before choosing model
// knobs.
#pragma once

#include <cstddef>
#include <string>

#include "stats/descriptive.hpp"
#include "trace/features.hpp"
#include "trace/traceset.hpp"

namespace kooza::core {

struct CharacterizationReport {
    // Volume.
    std::size_t requests = 0;
    double duration = 0.0;       ///< seconds covered by the trace
    double arrival_rate = 0.0;   ///< requests per second
    double read_fraction = 0.0;

    // Marginals.
    stats::Summary size_summary;     ///< request payload bytes
    stats::Summary latency_summary;  ///< end-to-end seconds

    // Arrival-stream structure (window-binned counts).
    std::string arrival_family;      ///< best-fit family of inter-arrivals
    double arrival_ks = 1.0;         ///< its KS distance
    double burstiness_idc = 0.0;     ///< index of dispersion for counts
    double peak_to_mean = 0.0;
    double hurst = 0.5;              ///< self-similarity of the count series
    double stationarity_drift = 0.0; ///< max window-mean deviation
    std::size_t dominant_period = 0; ///< in windows; 0 = none found

    // Size distribution shape.
    std::string size_family;
    bool heavy_tailed = false;  ///< p99/median > 20 or Pareto alpha <= 2

    // Feature-space dimensionality (paper Section 4's PCA reduction).
    std::size_t feature_dims = 0;     ///< raw feature count
    std::size_t pca_dims_90 = 0;      ///< components for 90% variance

    // Degraded-mode activity, from the failures stream (all zero for a
    // healthy capture; the report prints this section only when the
    // stream is non-empty).
    std::size_t crashes = 0;
    std::size_t recoveries = 0;
    std::size_t failovers = 0;          ///< dead-replica timeouts clients paid
    std::size_t repairs = 0;            ///< committed re-replications
    std::size_t failed_requests = 0;    ///< requests that exhausted retries
    std::size_t admission_rejections = 0;  ///< pieces bounced by ticket admission
    double mean_failover_wait = 0.0;    ///< mean backoff per failover, seconds
    double request_success_rate = 1.0;  ///< completed / (completed + failed)

    [[nodiscard]] std::string to_string() const;
};

/// Characterize a trace set. `window` is the bin width (seconds) for the
/// count-series statistics. Throws std::invalid_argument when the trace
/// has fewer than 4 completed requests.
[[nodiscard]] CharacterizationReport characterize(const trace::TraceSet& ts,
                                                  double window = 0.5);

/// Cross-subsystem correlation study (paper Section 5: "Even more
/// interesting are the correlations that emerge between individual
/// models. Studying these correlations can facilitate the development of
/// a performance ... model for the datacenter.") — the Pearson matrix of
/// the per-request feature columns plus a fitted linear performance model
/// predicting latency from the subsystem features.
struct CorrelationReport {
    /// Feature order: net bytes, cpu busy s, mem bytes, storage bytes,
    /// latency.
    std::vector<std::string> names;
    std::vector<std::vector<double>> matrix;  ///< Pearson correlations

    /// Linear performance model latency ~ b0 + b.features (no latency
    /// column among the predictors).
    std::vector<double> perf_coefficients;
    double perf_r_squared = 0.0;

    /// Predict a request's latency from its subsystem features.
    [[nodiscard]] double predict_latency(const trace::RequestFeatures& f) const;

    [[nodiscard]] std::string to_string() const;
};

/// Throws std::invalid_argument with fewer than 8 completed requests.
[[nodiscard]] CorrelationReport correlation_report(const trace::TraceSet& ts);

}  // namespace kooza::core
