#include "core/generator.hpp"

#include <stdexcept>

#include "core/model_walk.hpp"
#include "obs/metrics.hpp"

namespace kooza::core {

namespace {

struct GeneratorMetrics {
    obs::Counter& generated = obs::counter("core.generator.requests_total");
    obs::Counter& bytes =
        obs::counter("core.generator.bytes_total", obs::Unit::kBytes);
    obs::Histogram& synth_wall_ns = obs::histogram(
        "core.generator.synth_wall_ns", obs::Unit::kNanoseconds, /*wall=*/true);
};

GeneratorMetrics& metrics() {
    static GeneratorMetrics m;
    return m;
}

}  // namespace

SyntheticWorkload Generator::generate(std::size_t count, sim::Rng& rng,
                                      double start) const {
    if (count == 0) throw std::invalid_argument("Generator::generate: count 0");
    const obs::TimerScope synth_timer(metrics().synth_wall_ns);
    SyntheticWorkload out;
    out.model_name = "kooza:" + model_.workload_name();
    out.requests.reserve(count);

    detail::ModelWalker walker(model_, start);
    for (std::size_t i = 0; i < count; ++i) {
        SyntheticRequest r = walker.next(rng);
        metrics().generated.add();
        metrics().bytes.add(r.storage_bytes);
        out.requests.push_back(std::move(r));
    }
    return out;
}

}  // namespace kooza::core
