#include "core/generator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace kooza::core {

namespace {

struct GeneratorMetrics {
    obs::Counter& generated = obs::counter("core.generator.requests_total");
    obs::Counter& bytes =
        obs::counter("core.generator.bytes_total", obs::Unit::kBytes);
    obs::Histogram& synth_wall_ns = obs::histogram(
        "core.generator.synth_wall_ns", obs::Unit::kNanoseconds, /*wall=*/true);
};

GeneratorMetrics& metrics() {
    static GeneratorMetrics m;
    return m;
}

std::uint64_t to_bytes(double x) {
    if (!(x > 0.0)) return 512;
    return std::uint64_t(std::llround(std::max(x, 512.0)));
}

/// Walks one TypeModel's chains, remembering the current state of each.
struct ChainCursor {
    const TypeModel& tm;
    std::optional<std::size_t> storage_state;
    std::optional<std::size_t> memory_state;
    std::optional<std::size_t> cpu_state;

    explicit ChainCursor(const TypeModel& t) : tm(t) {}

    markov::AnnotatedStep advance(const markov::AnnotatedMarkovChain& chain,
                                  std::optional<std::size_t>& state, sim::Rng& rng) {
        markov::AnnotatedStep step =
            state ? chain.step_from(*state, rng)
                  : chain.annotate(chain.chain().sample_initial(rng), rng);
        state = step.state;
        return step;
    }
};

}  // namespace

SyntheticWorkload Generator::generate(std::size_t count, sim::Rng& rng,
                                      double start) const {
    if (count == 0) throw std::invalid_argument("Generator::generate: count 0");
    const obs::TimerScope synth_timer(metrics().synth_wall_ns);
    SyntheticWorkload out;
    out.model_name = "kooza:" + model_.workload_name();
    out.requests.reserve(count);

    auto arrivals = model_.arrivals().clone();
    arrivals->reset();

    std::optional<ChainCursor> read_cursor, write_cursor;
    if (model_.has_reads()) read_cursor.emplace(model_.reads());
    if (model_.has_writes()) write_cursor.emplace(model_.writes());

    double t = start;
    for (std::size_t i = 0; i < count; ++i) {
        t += arrivals->next_interarrival(rng);
        const bool is_read =
            model_.has_reads() &&
            (!model_.has_writes() || rng.bernoulli(model_.read_fraction()));
        ChainCursor& cur = is_read ? *read_cursor : *write_cursor;

        SyntheticRequest r;
        r.time = t;
        r.type = is_read ? trace::IoType::kRead : trace::IoType::kWrite;

        // Storage: LBN range state + size/net features.
        auto sto = cur.advance(cur.tm.storage, cur.storage_state, rng);
        r.lbn = std::uint64_t(model_.lbn_states().sample_within(sto.state, rng));
        r.storage_bytes = to_bytes(sto.features.at(feature::kSize));
        r.storage_type = r.type;
        r.network_bytes = to_bytes(sto.features.at(feature::kNet));

        // Memory: bank state + size/type features.
        auto mem = cur.advance(cur.tm.memory, cur.memory_state, rng);
        r.bank = std::uint32_t(model_.bank_states().representative(mem.state));
        r.memory_bytes = to_bytes(mem.features.at(feature::kSize));
        r.memory_type = mem.features.at(feature::kType) >= 0.5 ? trace::IoType::kWrite
                                                               : trace::IoType::kRead;

        // CPU: utilization-level state + busy-seconds feature.
        auto cpu = cur.advance(cur.tm.cpu, cur.cpu_state, rng);
        r.cpu_busy_seconds = std::max(0.0, cpu.features.at(feature::kBusy));

        // Structure: phase order for the replayer.
        r.phases = cur.tm.structure.sample(rng);

        metrics().generated.add();
        metrics().bytes.add(r.storage_bytes);
        out.requests.push_back(std::move(r));
    }
    return out;
}

}  // namespace kooza::core
