#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "par/pool.hpp"
#include "stats/fitting.hpp"
#include "stats/hypothesis.hpp"
#include "trace/binary.hpp"
#include "trace/features.hpp"

namespace kooza::core {

namespace {

// Wall-clock train timings are tagged `wall`: they are real elapsed time,
// vary run to run, and are excluded from deterministic exports.
struct TrainerMetrics {
    obs::Counter& runs = obs::counter("core.trainer.runs_total");
    obs::Counter& requests = obs::counter("core.trainer.requests_total");
    obs::Histogram& train_wall_ns = obs::histogram(
        "core.trainer.train_wall_ns", obs::Unit::kNanoseconds, /*wall=*/true);
    obs::Histogram& submodel_wall_ns = obs::histogram(
        "core.trainer.submodel_wall_ns", obs::Unit::kNanoseconds, /*wall=*/true);
};

TrainerMetrics& trainer_metrics() {
    static TrainerMetrics m;
    return m;
}

}  // namespace

std::vector<std::string> canonical_phases(trace::IoType t) {
    if (t == trace::IoType::kRead)
        return {"net.rx", "cpu.verify", "mem.buffer", "disk.io", "cpu.aggregate",
                "net.tx"};
    // Write path (gfs::ChunkServer::handle_write): the payload is verified,
    // buffered and written, then re-enters NET/DISK through the replica
    // fan-out before the post-I/O aggregate and the ack leaves on net.tx.
    return {"net.rx",       "cpu.verify",    "mem.buffer", "disk.io",
            "repl.forward", "cpu.aggregate", "net.tx"};
}

namespace {

std::uint64_t next_pow2(std::uint64_t x) {
    std::uint64_t p = 1;
    while (p < x && p < (1ull << 62)) p <<= 1;
    return p;
}

}  // namespace

Trainer::Trainer(TrainerConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.lbn_ranges == 0 || cfg_.util_levels == 0)
        throw std::invalid_argument("Trainer: state-space sizes must be >= 1");
}

struct Trainer::TrainInputs {
    std::vector<trace::RequestFeatures> features;
    std::uint64_t max_lbn = 0;    ///< over every storage record
    std::uint32_t max_bank = 0;   ///< over every memory record
    double verify_sum = 0.0;      ///< cpu.verify span seconds
    double verify_total = 0.0;    ///< cpu.verify + cpu.aggregate seconds
    StructureAccumulator structure;
};

ServerModel Trainer::train(const trace::TraceSet& ts) const {
    TrainInputs in;
    in.features = trace::extract_features(ts);
    for (const auto& r : ts.storage) in.max_lbn = std::max(in.max_lbn, r.lbn);
    for (const auto& r : ts.memory) in.max_bank = std::max(in.max_bank, r.bank);
    for (const auto& s : ts.spans) {
        if (s.name == "cpu.verify") in.verify_sum += s.duration();
        if (s.name == "cpu.verify" || s.name == "cpu.aggregate")
            in.verify_total += s.duration();
    }
    in.structure.observe(ts.spans);
    return train_impl(std::move(in));
}

ServerModel Trainer::train_streaming(const std::filesystem::path& dir,
                                     std::size_t chunk_rows) const {
    if (chunk_rows == 0)
        throw std::invalid_argument(
            "Trainer::train_streaming: chunk_rows must be >= 1");
    trace::ChunkedReader reader(dir);
    TrainInputs in;
    trace::FeatureAccumulator facc;
    trace::TraceSet chunk;
    const auto for_chunks = [&](trace::StreamId s, auto&& fn) {
        const std::uint64_t total = reader.rows(s);
        for (std::uint64_t off = 0; off < total; off += chunk_rows) {
            chunk = trace::TraceSet{};
            reader.read_rows(s, off,
                             std::min<std::uint64_t>(chunk_rows, total - off), chunk);
            fn(chunk);
        }
    };
    // Stream feed order mirrors FeatureAccumulator::observe(TraceSet) —
    // network, cpu, memory, storage, requests — so the per-request
    // accumulation is identical to the in-memory pass. (The failures
    // stream carries no model features.)
    for_chunks(trace::StreamId::kNetwork, [&](const trace::TraceSet& c) {
        for (const auto& r : c.network) facc.observe(r);
    });
    for_chunks(trace::StreamId::kCpu, [&](const trace::TraceSet& c) {
        for (const auto& r : c.cpu) facc.observe(r);
    });
    for_chunks(trace::StreamId::kMemory, [&](const trace::TraceSet& c) {
        for (const auto& r : c.memory) {
            facc.observe(r);
            in.max_bank = std::max(in.max_bank, r.bank);
        }
    });
    for_chunks(trace::StreamId::kStorage, [&](const trace::TraceSet& c) {
        for (const auto& r : c.storage) {
            facc.observe(r);
            in.max_lbn = std::max(in.max_lbn, r.lbn);
        }
    });
    for_chunks(trace::StreamId::kRequests, [&](const trace::TraceSet& c) {
        for (const auto& r : c.requests) facc.observe(r);
    });
    for_chunks(trace::StreamId::kSpans, [&](const trace::TraceSet& c) {
        for (const auto& s : c.spans) {
            if (s.name == "cpu.verify") in.verify_sum += s.duration();
            if (s.name == "cpu.verify" || s.name == "cpu.aggregate")
                in.verify_total += s.duration();
        }
        in.structure.observe(c.spans);
    });
    in.features = facc.finish();
    return train_impl(std::move(in));
}

ServerModel Trainer::train_impl(TrainInputs in) const {
    const obs::TimerScope train_timer(trainer_metrics().train_wall_ns);
    const auto& features = in.features;
    if (features.empty())
        throw std::invalid_argument("Trainer::train: no completed requests in trace");
    trainer_metrics().runs.add();
    trainer_metrics().requests.add(features.size());

    // ---- Network sub-model: the arrival process. -------------------------
    std::vector<double> arrivals = trace::column_arrival(features);
    std::sort(arrivals.begin(), arrivals.end());
    std::unique_ptr<queueing::ArrivalProcess> arrival_model;
    if (arrivals.size() < 3) {
        arrival_model = std::make_unique<queueing::PoissonArrivals>(1.0);
    } else {
        std::vector<double> gaps(arrivals.size() - 1);
        for (std::size_t i = 1; i < arrivals.size(); ++i)
            gaps[i - 1] = std::max(arrivals[i] - arrivals[i - 1], 1e-12);
        auto exp_fit = stats::fit_exponential(gaps);
        const double ks = stats::ks_statistic(gaps, *exp_fit);
        if (ks <= cfg_.arrival_ks_threshold) {
            arrival_model =
                std::make_unique<queueing::PoissonArrivals>(exp_fit->lambda());
        } else {
            // Divergent-from-Poisson stream: keep the empirical gaps.
            arrival_model = std::make_unique<queueing::TraceArrivals>(gaps);
        }
    }

    // ---- State spaces. ---------------------------------------------------
    std::uint64_t lbn_space = cfg_.lbn_space;
    if (lbn_space == 0) lbn_space = next_pow2(in.max_lbn + 1);
    std::size_t banks = cfg_.banks;
    if (banks == 0) banks = std::size_t(in.max_bank) + 1;
    auto lbn_disc = std::make_unique<markov::LbnRangeDiscretizer>(
        lbn_space, std::min<std::size_t>(cfg_.lbn_ranges, std::size_t(lbn_space)));
    auto bank_disc = std::make_unique<markov::BankDiscretizer>(banks);
    auto util_disc = std::make_unique<markov::UtilizationDiscretizer>(cfg_.util_levels);

    // ---- Split requests by type, in arrival order. -----------------------
    std::size_t n_reads = 0;
    for (const auto& f : features)
        if (f.storage_type == trace::IoType::kRead) ++n_reads;
    const double read_fraction = double(n_reads) / double(features.size());

    // ---- Learn the CPU verify/aggregate split from span durations. -------
    double verify_fraction = 0.4;
    if (in.verify_total > 0.0 && in.verify_sum > 0.0 &&
        in.verify_sum < in.verify_total)
        verify_fraction = in.verify_sum / in.verify_total;

    auto build_type_model = [&](trace::IoType type) -> std::optional<TypeModel> {
        std::vector<const trace::RequestFeatures*> fs;
        for (const auto& f : features)
            if (f.storage_type == type) fs.push_back(&f);
        if (fs.empty()) return std::nullopt;

        markov::AnnotatedSequence storage_seq, memory_seq, cpu_seq;
        for (const auto* f : fs) {
            storage_seq.states.push_back(lbn_disc->state_of(double(f->first_lbn)));
            storage_seq.features[feature::kSize].push_back(double(f->storage_bytes));
            storage_seq.features[feature::kNet].push_back(double(f->network_bytes));
            memory_seq.states.push_back(bank_disc->state_of(double(f->first_bank)));
            memory_seq.features[feature::kSize].push_back(double(f->memory_bytes));
            memory_seq.features[feature::kType].push_back(
                f->memory_type == trace::IoType::kWrite ? 1.0 : 0.0);
            cpu_seq.states.push_back(util_disc->state_of(f->cpu_utilization));
            cpu_seq.features[feature::kBusy].push_back(f->cpu_busy_seconds);
        }
        const markov::AnnotatedSequence storage_arr[] = {std::move(storage_seq)};
        const markov::AnnotatedSequence memory_arr[] = {std::move(memory_seq)};
        const markov::AnnotatedSequence cpu_arr[] = {std::move(cpu_seq)};
        std::vector<trace::TraceId> ids;
        for (const auto* f : fs) ids.push_back(f->request_id);

        // The three Markov sub-models and the structure queue are fitted
        // from disjoint inputs — run them across the pool. Each result
        // lands in its own slot, so the fit is identical at any thread
        // count (a nested call from a pool worker just runs inline).
        std::optional<markov::AnnotatedMarkovChain> storage, memory, cpu;
        std::optional<StructureQueue> structure;
        par::pool().parallel_for(4, [&](std::size_t task) {
            const obs::TimerScope fit_timer(trainer_metrics().submodel_wall_ns);
            switch (task) {
                case 0:
                    storage = markov::AnnotatedMarkovChain::fit(
                        storage_arr, lbn_disc->n_states(), cfg_.laplace_alpha,
                        cfg_.ks_threshold, cfg_.max_state_samples);
                    break;
                case 1:
                    memory = markov::AnnotatedMarkovChain::fit(
                        memory_arr, bank_disc->n_states(), cfg_.laplace_alpha,
                        cfg_.ks_threshold, cfg_.max_state_samples);
                    break;
                case 2:
                    cpu = markov::AnnotatedMarkovChain::fit(
                        cpu_arr, util_disc->n_states(), cfg_.laplace_alpha,
                        cfg_.ks_threshold, cfg_.max_state_samples);
                    break;
                default:
                    // Structure from span trees of this type's requests.
                    try {
                        structure = in.structure.fit(ids, cfg_.ks_threshold);
                    } catch (const std::invalid_argument&) {
                        if (!cfg_.fallback_structure) throw;
                        structure = StructureQueue::canonical(canonical_phases(type));
                    }
            }
        });
        return TypeModel{std::move(*storage), std::move(*memory), std::move(*cpu),
                         std::move(*structure)};
    };

    // Read-type and write-type models are independent given the shared
    // (read-only) discretizers — fit them concurrently.
    std::optional<TypeModel> models[2];
    par::pool().parallel_for(2, [&](std::size_t i) {
        models[i] =
            build_type_model(i == 0 ? trace::IoType::kRead : trace::IoType::kWrite);
    });
    auto read_model = std::move(models[0]);
    auto write_model = std::move(models[1]);

    return ServerModel(cfg_.workload_name, std::move(arrival_model), read_fraction,
                       std::move(read_model), std::move(write_model),
                       std::move(lbn_disc), std::move(bank_disc), std::move(util_disc),
                       verify_fraction);
}

}  // namespace kooza::core
