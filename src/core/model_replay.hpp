// Trained-model replay generator: a trained KOOZA ServerModel as a
// pull-based workload generator. Walks the model's arrival process and
// annotated chains one request at a time (same draw order as
// Generator::generate — see model_walk.hpp) and maps each synthetic
// request onto a gfs::RequestSpec, so captured-and-trained workloads can
// be re-driven through the capture pipeline and cross-examined against
// the originals.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "core/model.hpp"
#include "workloads/generator.hpp"

namespace kooza::core {

class ModelReplayGenerator final : public workloads::Generator {
public:
    struct Params {
        std::size_t count = 500;   ///< requests to emit before exhaustion
        std::uint64_t seed = 7;    ///< model-walk RNG seed
        std::uint64_t file_size = 1ull << 30;  ///< replay target file bytes
    };

    /// Replay an in-memory model (takes ownership).
    ModelReplayGenerator(ServerModel model, Params p);
    /// Replay a model file written by core::save_model.
    ModelReplayGenerator(const std::filesystem::path& model_file, Params p);
    ~ModelReplayGenerator() override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
    files() const override {
        return files_;
    }

protected:
    [[nodiscard]] std::optional<gfs::RequestSpec> poll() override;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::vector<std::pair<std::string, std::uint64_t>> files_;
};

}  // namespace kooza::core
