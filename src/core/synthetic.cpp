#include "core/synthetic.hpp"

namespace kooza::core {

std::vector<trace::RequestFeatures> to_features(const SyntheticWorkload& w) {
    std::vector<trace::RequestFeatures> out;
    out.reserve(w.requests.size());
    std::uint64_t id = 0;
    for (const auto& r : w.requests) {
        trace::RequestFeatures f;
        f.request_id = id++;
        f.arrival = r.time;
        f.network_bytes = r.network_bytes;
        f.cpu_busy_seconds = r.cpu_busy_seconds;
        f.memory_bytes = r.memory_bytes;
        f.memory_type = r.memory_type;
        f.first_bank = r.bank;
        f.storage_bytes = r.storage_bytes;
        f.storage_type = r.storage_type;
        f.first_lbn = r.lbn;
        f.latency = 0.0;
        f.cpu_utilization = 0.0;
        out.push_back(f);
    }
    return out;
}

}  // namespace kooza::core
