#include "core/model_replay.hpp"

#include <algorithm>

#include "core/model_walk.hpp"
#include "core/serialize.hpp"

namespace kooza::core {

namespace {
constexpr const char* kReplayFile = "model-replay.dat";

std::uint64_t align4k(std::uint64_t offset) { return offset & ~std::uint64_t(4095); }
}  // namespace

struct ModelReplayGenerator::Impl {
    ServerModel model;
    Params p;
    sim::Rng rng;
    detail::ModelWalker walker;
    std::size_t emitted = 0;

    Impl(ServerModel m, Params params)
        : model(std::move(m)), p(params), rng(p.seed), walker(model, 0.0) {}
};

ModelReplayGenerator::ModelReplayGenerator(ServerModel model, Params p)
    : impl_(std::make_unique<Impl>(std::move(model), p)) {
    files_.emplace_back(kReplayFile, impl_->p.file_size);
}

ModelReplayGenerator::ModelReplayGenerator(const std::filesystem::path& model_file,
                                           Params p)
    : ModelReplayGenerator(load_model(model_file), p) {}

ModelReplayGenerator::~ModelReplayGenerator() = default;

std::string ModelReplayGenerator::name() const {
    return "model:" + impl_->model.workload_name();
}

std::optional<gfs::RequestSpec> ModelReplayGenerator::poll() {
    if (impl_->emitted >= impl_->p.count) return std::nullopt;
    ++impl_->emitted;
    const SyntheticRequest s = impl_->walker.next(impl_->rng);

    const std::uint64_t file_size = impl_->p.file_size;
    gfs::RequestSpec r;
    r.time = s.time;
    r.type = s.type;
    r.file = kReplayFile;
    r.size = std::min(s.storage_bytes, file_size);
    // The model's LBN is a disk-address sample; fold it into the replay
    // file's byte range, 4 KB-aligned, and keep the request in bounds.
    const std::uint64_t offset = align4k(s.lbn % file_size);
    r.offset = r.size >= file_size ? 0 : std::min(offset, file_size - r.size);
    return r;
}

}  // namespace kooza::core
