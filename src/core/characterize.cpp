#include "core/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "stats/fitting.hpp"
#include "stats/matrix.hpp"
#include "stats/pca.hpp"
#include "stats/regression.hpp"
#include "stats/timeseries.hpp"
#include "trace/features.hpp"

namespace kooza::core {

CharacterizationReport characterize(const trace::TraceSet& ts, double window) {
    if (!(window > 0.0)) throw std::invalid_argument("characterize: window must be > 0");
    const auto features = trace::extract_features(ts);
    if (features.size() < 4)
        throw std::invalid_argument("characterize: need >= 4 completed requests");

    CharacterizationReport r;
    r.requests = features.size();

    const auto arrivals = trace::column_arrival(features);
    r.duration = arrivals.back() - arrivals.front();
    r.arrival_rate =
        r.duration > 0.0 ? double(features.size() - 1) / r.duration : 0.0;

    std::size_t reads = 0;
    for (const auto& f : features)
        if (f.storage_type == trace::IoType::kRead) ++reads;
    r.read_fraction = double(reads) / double(features.size());

    const auto sizes = trace::column_network_bytes(features);
    const auto latencies = trace::column_latency(features);
    r.size_summary = stats::summarize(sizes);
    r.latency_summary = stats::summarize(latencies);

    // Inter-arrival family (KS-selected, Feitelson-style).
    std::vector<double> gaps;
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        gaps.push_back(std::max(arrivals[i] - arrivals[i - 1], 1e-12));
    try {
        auto fit = stats::fit_best(gaps);
        r.arrival_family = fit.dist->name();
        r.arrival_ks = fit.ks;
    } catch (const std::exception&) {
        r.arrival_family = "degenerate";
    }

    // Count-series structure.
    r.burstiness_idc = stats::index_of_dispersion(arrivals, window);
    r.peak_to_mean = stats::peak_to_mean(arrivals, window);
    {
        // Bin into windows for Hurst / stationarity / periodicity.
        const std::size_t n_win =
            std::max<std::size_t>(4, std::size_t(r.duration / window) + 1);
        std::vector<double> counts(n_win, 0.0);
        for (double t : arrivals) {
            auto w = std::size_t((t - arrivals.front()) / window);
            counts[std::min(w, n_win - 1)] += 1.0;
        }
        if (counts.size() >= 32) r.hurst = stats::hurst_exponent(counts);
        if (counts.size() >= 8)
            r.stationarity_drift = stats::stationarity_drift(counts, 4);
        if (counts.size() >= 16)
            r.dominant_period =
                stats::dominant_period(counts, 2, counts.size() / 2, 0.3);
    }

    // Size shape.
    try {
        auto fit = stats::fit_best(sizes);
        r.size_family = fit.dist->name();
    } catch (const std::exception&) {
        r.size_family = "degenerate";
    }
    const double med = std::max(r.size_summary.median, 1.0);
    r.heavy_tailed = r.size_summary.p99 / med > 20.0;
    if (r.size_family == "pareto") {
        try {
            auto pareto = stats::fit_pareto(sizes);
            if (pareto->alpha() <= 2.0) r.heavy_tailed = true;
        } catch (const std::exception&) {
        }
    }

    // PCA over the per-request feature matrix (standardized).
    {
        std::vector<std::vector<double>> rows;
        rows.reserve(features.size());
        for (const auto& f : features)
            rows.push_back({double(f.network_bytes), f.cpu_utilization,
                            double(f.memory_bytes), double(f.storage_bytes),
                            f.latency});
        r.feature_dims = rows.front().size();
        stats::Pca pca(stats::Matrix::from_rows(rows), /*standardize=*/true);
        r.pca_dims_90 = pca.components_for(0.9);
    }

    // Degraded-mode activity from the failures stream.
    {
        double failover_wait = 0.0;
        for (const auto& f : ts.failures) {
            switch (f.kind) {
                case trace::FailureRecord::Kind::kCrash: ++r.crashes; break;
                case trace::FailureRecord::Kind::kRecover: ++r.recoveries; break;
                case trace::FailureRecord::Kind::kFailover:
                    ++r.failovers;
                    failover_wait += f.duration;
                    break;
                case trace::FailureRecord::Kind::kRepair: ++r.repairs; break;
                case trace::FailureRecord::Kind::kRequestFailed:
                    ++r.failed_requests;
                    break;
                case trace::FailureRecord::Kind::kAdmissionReject:
                    ++r.admission_rejections;
                    break;
            }
        }
        if (r.failovers > 0) r.mean_failover_wait = failover_wait / double(r.failovers);
        r.request_success_rate =
            double(r.requests) / double(r.requests + r.failed_requests);
    }
    return r;
}

CorrelationReport correlation_report(const trace::TraceSet& ts) {
    const auto features = trace::extract_features(ts);
    if (features.size() < 8)
        throw std::invalid_argument("correlation_report: need >= 8 requests");
    CorrelationReport r;
    r.names = {"net_bytes", "cpu_busy_s", "mem_bytes", "sto_bytes", "latency"};
    const std::vector<std::vector<double>> cols{
        trace::column_network_bytes(features),
        [&] {
            std::vector<double> out;
            for (const auto& f : features) out.push_back(f.cpu_busy_seconds);
            return out;
        }(),
        trace::column_memory_bytes(features),
        trace::column_storage_bytes(features),
        trace::column_latency(features)};
    r.matrix.assign(cols.size(), std::vector<double>(cols.size(), 1.0));
    for (std::size_t i = 0; i < cols.size(); ++i)
        for (std::size_t j = i + 1; j < cols.size(); ++j) {
            const double c = stats::correlation(cols[i], cols[j]);
            r.matrix[i][j] = c;
            r.matrix[j][i] = c;
        }
    // Performance model: latency from the four subsystem features.
    std::vector<std::vector<double>> rows;
    rows.reserve(features.size());
    for (const auto& f : features)
        rows.push_back({double(f.network_bytes), f.cpu_busy_seconds,
                        double(f.memory_bytes), double(f.storage_bytes)});
    // GFS features can be exactly collinear (payload == storage bytes for
    // simple requests), so regularize lightly.
    stats::LinearModel lm(stats::Matrix::from_rows(rows), cols.back(), 1e-6);
    r.perf_coefficients = lm.coefficients();
    r.perf_r_squared = lm.r_squared();
    return r;
}

double CorrelationReport::predict_latency(const trace::RequestFeatures& f) const {
    if (perf_coefficients.size() != 5)
        throw std::logic_error("CorrelationReport: model not fitted");
    return perf_coefficients[0] + perf_coefficients[1] * double(f.network_bytes) +
           perf_coefficients[2] * f.cpu_busy_seconds +
           perf_coefficients[3] * double(f.memory_bytes) +
           perf_coefficients[4] * double(f.storage_bytes);
}

std::string CorrelationReport::to_string() const {
    std::ostringstream os;
    os << "feature correlation matrix:\n           ";
    for (const auto& n : names) os << " " << n.substr(0, 9);
    os << "\n";
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto label = names[i].substr(0, 9);
        os << "  " << label << std::string(9 - label.size(), ' ');
        for (std::size_t j = 0; j < names.size(); ++j) {
            char buf[16];
            std::snprintf(buf, sizeof buf, " %9.3f", matrix[i][j]);
            os << buf;
        }
        os << "\n";
    }
    os << "performance model: latency ~ features, R^2 = " << perf_r_squared << "\n";
    return os.str();
}

std::string CharacterizationReport::to_string() const {
    std::ostringstream os;
    os << "requests:        " << requests << " over " << duration << " s ("
       << arrival_rate << "/s, " << read_fraction * 100.0 << "% reads)\n"
       << "sizes:           " << size_summary.to_string() << "\n"
       << "latency:         " << latency_summary.to_string() << "\n"
       << "arrivals:        best fit " << arrival_family << " (KS " << arrival_ks
       << ")\n"
       << "burstiness:      IDC " << burstiness_idc << ", peak/mean " << peak_to_mean
       << "\n"
       << "self-similarity: Hurst " << hurst << "\n"
       << "stationarity:    drift " << stationarity_drift
       << (stationarity_drift < 0.1 ? " (stationary)" : " (non-stationary)") << "\n"
       << "periodicity:     "
       << (dominant_period == 0 ? std::string("none")
                                : std::to_string(dominant_period) + " windows")
       << "\n"
       << "size family:     " << size_family
       << (heavy_tailed ? " (heavy-tailed)" : "") << "\n"
       << "feature space:   " << pca_dims_90 << "/" << feature_dims
       << " PCA components explain 90% variance\n";
    if (crashes + recoveries + failovers + repairs + failed_requests +
            admission_rejections >
        0) {
        os << "faults:          " << crashes << " crashes, " << recoveries
           << " recoveries, " << repairs << " re-replications\n"
           << "degradation:     " << failovers << " failovers (mean wait "
           << mean_failover_wait << " s), " << failed_requests
           << " failed requests (success rate " << request_success_rate * 100.0
           << "%)\n";
        if (admission_rejections > 0)
            os << "admission:       " << admission_rejections
               << " pieces rejected by ticket admission\n";
    }
    return os.str();
}

}  // namespace kooza::core
