#include "core/structure.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "stats/fitting.hpp"

namespace kooza::core {

StructureQueue StructureQueue::fit(const std::vector<trace::Span>& spans,
                                   std::span<const trace::TraceId> trace_ids,
                                   double ks_threshold) {
    StructureAccumulator acc;
    acc.observe(spans);
    return acc.fit(trace_ids, ks_threshold);
}

void StructureAccumulator::observe(const trace::Span& s) {
    spans_[s.trace_id].push_back(s);
    ++n_spans_;
}

void StructureAccumulator::observe(const std::vector<trace::Span>& spans) {
    for (const auto& s : spans) observe(s);
}

void StructureAccumulator::merge(StructureAccumulator&& other) {
    for (auto& [id, vec] : other.spans_) {
        auto& mine = spans_[id];
        if (mine.empty())
            mine = std::move(vec);
        else
            mine.insert(mine.end(), std::make_move_iterator(vec.begin()),
                        std::make_move_iterator(vec.end()));
    }
    n_spans_ += other.n_spans_;
    other.spans_.clear();
    other.n_spans_ = 0;
}

StructureQueue StructureAccumulator::fit(std::span<const trace::TraceId> trace_ids,
                                         double ks_threshold) const {
    std::set<trace::TraceId> wanted(trace_ids.begin(), trace_ids.end());
    // Sequence -> count; phase -> durations. Buckets iterate in ascending
    // trace-id order, matching SpanTree::trace_ids over a flat vector
    // (SpanTree itself re-sorts by (start, span id), a total order, so
    // the buffered arrival order is irrelevant).
    std::map<std::vector<std::string>, std::size_t> counts;
    std::map<std::string, std::vector<double>> durations;
    std::size_t used = 0;
    for (const auto& [id, vec] : spans_) {
        if (wanted.find(id) == wanted.end()) continue;
        trace::SpanTree tree(vec, id);
        std::vector<std::string> seq;
        for (const auto& s : tree.spans()) {
            if (s.parent_id == 0) continue;  // skip the root "request" span
            seq.push_back(s.name);
            durations[s.name].push_back(s.duration());
        }
        if (seq.empty()) continue;
        ++counts[seq];
        ++used;
    }
    if (used == 0)
        throw std::invalid_argument("StructureQueue::fit: no usable span trees");

    // Assemble through from_parts: it re-sorts by count and renormalizes
    // probabilities from counts, reproducing the historical fit exactly.
    std::vector<StructureQueue::Variant> variants;
    for (auto& [seq, n] : counts) {
        StructureQueue::Variant v;
        v.phases = seq;
        v.count = n;
        variants.push_back(std::move(v));
    }
    std::map<std::string, std::unique_ptr<stats::Distribution>> fitted;
    for (auto& [name, vals] : durations)
        fitted[name] = stats::fit_or_empirical(vals, ks_threshold);
    return StructureQueue::from_parts(std::move(variants), std::move(fitted), used);
}

StructureQueue StructureQueue::from_parts(
    std::vector<Variant> variants,
    std::map<std::string, std::unique_ptr<stats::Distribution>> durations,
    std::size_t trained_on) {
    if (variants.empty())
        throw std::invalid_argument("StructureQueue::from_parts: no variants");
    std::size_t total = 0;
    for (const auto& v : variants) {
        if (v.phases.empty())
            throw std::invalid_argument("StructureQueue::from_parts: empty variant");
        total += v.count;
    }
    if (total == 0)
        throw std::invalid_argument("StructureQueue::from_parts: zero counts");
    StructureQueue q;
    q.trained_on_ = trained_on;
    q.variants_ = std::move(variants);
    std::sort(q.variants_.begin(), q.variants_.end(),
              [](const Variant& a, const Variant& b) { return a.count > b.count; });
    for (auto& v : q.variants_) {
        v.probability = double(v.count) / double(total);
        q.weights_.push_back(double(v.count));
    }
    q.durations_ = std::move(durations);
    for (const auto& v : q.variants_)
        for (const auto& p : v.phases)
            if (q.durations_.find(p) == q.durations_.end())
                q.durations_.emplace(p, std::make_unique<stats::Deterministic>(0.0));
    return q;
}

StructureQueue StructureQueue::canonical(std::vector<std::string> phases) {
    if (phases.empty())
        throw std::invalid_argument("StructureQueue::canonical: empty phase list");
    StructureQueue q;
    q.trained_on_ = 0;
    Variant v;
    v.phases = phases;
    v.count = 1;
    v.probability = 1.0;
    q.variants_.push_back(std::move(v));
    q.weights_.push_back(1.0);
    for (const auto& p : phases)
        q.durations_.emplace(p, std::make_unique<stats::Deterministic>(0.0));
    return q;
}

const std::vector<std::string>& StructureQueue::dominant() const {
    if (variants_.empty()) throw std::logic_error("StructureQueue: untrained");
    return variants_.front().phases;
}

const std::vector<std::string>& StructureQueue::sample(sim::Rng& rng) const {
    if (variants_.empty()) throw std::logic_error("StructureQueue: untrained");
    return variants_[rng.weighted_index(weights_)].phases;
}

const stats::Distribution& StructureQueue::phase_duration(
    const std::string& phase) const {
    auto it = durations_.find(phase);
    if (it == durations_.end())
        throw std::out_of_range("StructureQueue::phase_duration: " + phase);
    return *it->second;
}

bool StructureQueue::has_phase(const std::string& phase) const noexcept {
    return durations_.find(phase) != durations_.end();
}

std::vector<std::string> StructureQueue::phase_names() const {
    std::vector<std::string> out;
    for (const auto& [name, d] : durations_) out.push_back(name);
    return out;
}

std::size_t StructureQueue::parameter_count() const noexcept {
    std::size_t n = 0;
    for (const auto& v : variants_) n += v.phases.size() + 1;
    n += 2 * durations_.size();
    return n;
}

std::string StructureQueue::describe() const {
    std::ostringstream os;
    os << "StructureQueue(" << trained_on_ << " traces, " << variants_.size()
       << " variants)\n";
    for (const auto& v : variants_) {
        os << "  p=" << v.probability << " :";
        for (const auto& p : v.phases) os << " " << p;
        os << "\n";
    }
    return os.str();
}

}  // namespace kooza::core
