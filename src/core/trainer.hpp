// KOOZA trainer: fits a ServerModel from a TraceSet.
//
// "Each one of the four models is trained using traces from the
// corresponding subsystem" (paper, Section 4); the structure queue is
// trained from the Dapper-style span trees ("tracing the complete round
// trip of a request through the system"). The trainer never sees the
// simulator — only trace records.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include <vector>

#include "core/model.hpp"
#include "core/structure.hpp"
#include "trace/features.hpp"
#include "trace/traceset.hpp"

namespace kooza::core {

/// Canonical GFS phase order for a request type (paper Fig. 1), the
/// fallback structure when span sampling recorded no tree for the type.
/// Reads: rx -> verify -> buffer -> disk -> aggregate -> tx. Writes
/// additionally re-enter the network/disk path through the replica
/// fan-out (repl.forward) between the primary disk write and the ack.
[[nodiscard]] std::vector<std::string> canonical_phases(trace::IoType t);

struct TrainerConfig {
    std::string workload_name = "workload";

    /// Markov state-space sizes (paper Fig. 2 draws 4 of each).
    std::size_t lbn_ranges = 4;
    std::size_t util_levels = 4;
    /// 0 = infer from the memory records (max bank + 1).
    std::size_t banks = 0;
    /// LBN address-space size; 0 = infer (next power of two above max LBN).
    std::uint64_t lbn_space = 0;

    /// Laplace smoothing for chain fitting.
    double laplace_alpha = 0.5;
    /// Per-state feature fits fall back to empirical above this KS distance.
    double ks_threshold = 0.08;
    /// Arrival process falls back to trace-driven above this KS distance
    /// (Sengupta: traffic often diverges from Poisson).
    double arrival_ks_threshold = 0.1;

    /// If a request type has no sampled span trees (aggressive Dapper
    /// sampling), substitute the canonical GFS phase order instead of
    /// failing. Disable to require observed structure.
    bool fallback_structure = true;

    /// Cap on the values retained per (state, feature) pair when fitting
    /// the annotated chains (stats::CappedSample first-K retention).
    /// 0 keeps every observation — byte-identical to the unbounded fit —
    /// at O(requests) fitting memory; datacenter-scale streamed training
    /// sets a cap to bound it.
    std::size_t max_state_samples = 0;
};

class Trainer {
public:
    explicit Trainer(TrainerConfig cfg = {});

    /// Fit a full KOOZA server model. Throws std::invalid_argument when
    /// the trace set has no completed requests.
    [[nodiscard]] ServerModel train(const trace::TraceSet& ts) const;

    /// Fit the same model from a kooza.trace/1 capture directory without
    /// ever materializing the TraceSet: records are read `chunk_rows` at
    /// a time through trace::ChunkedReader and folded into merge-able
    /// sufficient statistics (trace::FeatureAccumulator,
    /// markov::ChainSuffStats, core::StructureAccumulator), so training
    /// memory is O(requests + sampled spans) instead of O(records).
    /// Produces a model byte-identical (under serialize::save_model) to
    /// train() on the materialized trace set when max_state_samples is 0.
    /// Throws std::runtime_error on a malformed capture and
    /// std::invalid_argument when it holds no completed requests.
    [[nodiscard]] ServerModel train_streaming(
        const std::filesystem::path& dir,
        std::size_t chunk_rows = std::size_t(1) << 16) const;

    [[nodiscard]] const TrainerConfig& config() const noexcept { return cfg_; }

private:
    /// Everything train_impl needs, producible from either a TraceSet
    /// or a chunked read of the binary capture.
    struct TrainInputs;

    [[nodiscard]] ServerModel train_impl(TrainInputs in) const;

    TrainerConfig cfg_;
};

}  // namespace kooza::core
