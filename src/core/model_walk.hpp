// Shared per-request walk over a trained ServerModel.
//
// Generator::generate() (batch) and ModelReplayGenerator (pull-based
// stream) must draw the exact same RNG sequence for the same model and
// seed — the cross-examination harness compares their outputs — so the
// single-request draw order lives here, in one place: arrival gap, type
// coin, storage chain + LBN, memory chain, CPU chain, phase structure.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/model.hpp"
#include "core/synthetic.hpp"
#include "sim/rng.hpp"

namespace kooza::core::detail {

inline std::uint64_t model_feature_bytes(double x) {
    if (!(x > 0.0)) return 512;
    return std::uint64_t(std::llround(std::max(x, 512.0)));
}

/// Walks one TypeModel's chains, remembering the current state of each.
struct ChainCursor {
    const TypeModel& tm;
    std::optional<std::size_t> storage_state;
    std::optional<std::size_t> memory_state;
    std::optional<std::size_t> cpu_state;

    explicit ChainCursor(const TypeModel& t) : tm(t) {}

    markov::AnnotatedStep advance(const markov::AnnotatedMarkovChain& chain,
                                  std::optional<std::size_t>& state, sim::Rng& rng) {
        markov::AnnotatedStep step =
            state ? chain.step_from(*state, rng)
                  : chain.annotate(chain.chain().sample_initial(rng), rng);
        state = step.state;
        return step;
    }
};

/// Stateful model walk: each next() advances the clock and every chain by
/// one request. Chain state persists across calls, so N calls of next()
/// equal one generate(N) draw-for-draw.
class ModelWalker {
public:
    ModelWalker(const ServerModel& model, double start)
        : model_(model), arrivals_(model.arrivals().clone()), t_(start) {
        arrivals_->reset();
        if (model_.has_reads()) read_.emplace(model_.reads());
        if (model_.has_writes()) write_.emplace(model_.writes());
    }

    [[nodiscard]] SyntheticRequest next(sim::Rng& rng) {
        t_ += arrivals_->next_interarrival(rng);
        const bool is_read =
            model_.has_reads() &&
            (!model_.has_writes() || rng.bernoulli(model_.read_fraction()));
        ChainCursor& cur = is_read ? *read_ : *write_;

        SyntheticRequest r;
        r.time = t_;
        r.type = is_read ? trace::IoType::kRead : trace::IoType::kWrite;

        // Storage: LBN range state + size/net features.
        auto sto = cur.advance(cur.tm.storage, cur.storage_state, rng);
        r.lbn = std::uint64_t(model_.lbn_states().sample_within(sto.state, rng));
        r.storage_bytes = model_feature_bytes(sto.features.at(feature::kSize));
        r.storage_type = r.type;
        r.network_bytes = model_feature_bytes(sto.features.at(feature::kNet));

        // Memory: bank state + size/type features.
        auto mem = cur.advance(cur.tm.memory, cur.memory_state, rng);
        r.bank = std::uint32_t(model_.bank_states().representative(mem.state));
        r.memory_bytes = model_feature_bytes(mem.features.at(feature::kSize));
        r.memory_type = mem.features.at(feature::kType) >= 0.5
                            ? trace::IoType::kWrite
                            : trace::IoType::kRead;

        // CPU: utilization-level state + busy-seconds feature.
        auto cpu = cur.advance(cur.tm.cpu, cur.cpu_state, rng);
        r.cpu_busy_seconds = std::max(0.0, cpu.features.at(feature::kBusy));

        // Structure: phase order for the replayer.
        r.phases = cur.tm.structure.sample(rng);
        return r;
    }

private:
    const ServerModel& model_;
    std::unique_ptr<queueing::ArrivalProcess> arrivals_;
    std::optional<ChainCursor> read_, write_;
    double t_;
};

}  // namespace kooza::core::detail
