#include "core/replayer.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "par/pool.hpp"
#include "sim/engine.hpp"
#include "trace/sink.hpp"

namespace kooza::core {

namespace {

struct ReplayerMetrics {
    obs::Counter& replayed = obs::counter("core.replayer.requests_total");
    obs::Counter& unknown = obs::counter("core.replayer.unknown_phases_total");
    // Simulated-time request latency: integer ns, deterministic at any
    // thread count (shard engines clock their own requests).
    obs::Histogram& latency_ns =
        obs::histogram("core.replayer.request_latency_ns", obs::Unit::kNanoseconds);
};

ReplayerMetrics& metrics() {
    static ReplayerMetrics m;
    return m;
}

/// One replay server: the chunkserver's device stack without GFS logic.
struct ServerStack {
    std::unique_ptr<hw::Disk> disk;
    std::unique_ptr<hw::Cpu> cpu;
    std::unique_ptr<hw::Memory> memory;
    std::unique_ptr<hw::SwitchPort> ingress;

    ServerStack(sim::Engine& eng, const ReplayConfig& cfg, trace::Sink* sink) {
        disk = std::make_unique<hw::Disk>(eng, cfg.disk, sink);
        cpu = std::make_unique<hw::Cpu>(eng, cfg.cpu, sink);
        memory = std::make_unique<hw::Memory>(eng, cfg.memory, sink);
        ingress = std::make_unique<hw::SwitchPort>(
            eng, cfg.net, trace::NetworkRecord::Direction::kRx, sink);
    }
};

struct Runtime {
    sim::Engine engine;
    trace::TraceSet traces;
    trace::MemorySink sink{traces};
    std::vector<std::unique_ptr<ServerStack>> servers;
    std::unique_ptr<hw::SwitchPort> client_port;
    std::vector<double> latencies;
    std::size_t unknown_phases = 0;

    explicit Runtime(const ReplayConfig& cfg) {
        for (std::size_t s = 0; s < cfg.n_servers; ++s)
            servers.push_back(std::make_unique<ServerStack>(engine, cfg, &sink));
        client_port = std::make_unique<hw::SwitchPort>(
            engine, cfg.net, trace::NetworkRecord::Direction::kTx, &sink);
    }

    void finish_request(std::uint64_t id, const SyntheticRequest& r, double arrival) {
        trace::RequestRecord rec;
        rec.request_id = id;
        rec.type = r.type;
        rec.arrival = arrival;
        rec.completion = engine.now();
        rec.bytes = r.network_bytes;
        traces.requests.push_back(rec);
        latencies.push_back(rec.completion - rec.arrival);
        metrics().replayed.add();
        metrics().latency_ns.observe_seconds(rec.completion - rec.arrival);
    }
};

class Execution {
public:
    Execution(Runtime& rt, const ReplayConfig& cfg) : rt_(rt), cfg_(cfg) {}

    /// How many times each phase kind occurs in a request's sequence —
    /// the request's feature budget is split evenly across repeats (a
    /// chunk-boundary write has two disk.io phases of half the bytes, not
    /// two full-size I/Os).
    struct PhaseCounts {
        std::size_t rx = 0, tx = 0, verify = 0, aggregate = 0, mem = 0, disk = 0;

        static PhaseCounts of(const std::vector<std::string>& phases) {
            PhaseCounts c;
            for (const auto& p : phases) {
                if (p == "net.rx") ++c.rx;
                else if (p == "net.tx") ++c.tx;
                else if (p == "cpu.verify") ++c.verify;
                else if (p == "cpu.aggregate") ++c.aggregate;
                else if (p == "mem.buffer") ++c.mem;
                else if (p == "disk.io") ++c.disk;
            }
            return c;
        }
    };

    /// Structured replay: phases in the request's learned order.
    void run_structured(std::uint64_t id, const SyntheticRequest& r,
                        std::size_t server) {
        const double arrival = rt_.engine.now();
        auto phases = std::make_shared<std::vector<std::string>>(r.phases);
        auto req = std::make_shared<SyntheticRequest>(r);
        auto counts = std::make_shared<PhaseCounts>(PhaseCounts::of(r.phases));
        auto step = std::make_shared<std::function<void(std::size_t)>>();
        *step = [this, id, req, server, arrival, phases, counts,
                 step](std::size_t i) {
            if (i >= phases->size()) {
                rt_.engine.schedule_after(0.0, [step] { *step = nullptr; });
                rt_.finish_request(id, *req, arrival);
                return;
            }
            execute_phase(id, *req, *counts, server, (*phases)[i],
                          [step, i] { (*step)(i + 1); });
        };
        (*step)(0);
    }

    /// Independent replay: all subsystems stressed concurrently (the
    /// structure-free in-breadth stressing).
    void run_independent(std::uint64_t id, const SyntheticRequest& r,
                         std::size_t server) {
        const double arrival = rt_.engine.now();
        auto req = std::make_shared<SyntheticRequest>(r);
        auto outstanding = std::make_shared<int>(4);
        auto done_one = [this, id, req, arrival, outstanding] {
            if (--*outstanding == 0) rt_.finish_request(id, *req, arrival);
        };
        ServerStack& st = *rt_.servers[server];
        // Network: payload in the payload-bearing direction.
        if (r.type == trace::IoType::kWrite)
            st.ingress->transfer(id, r.network_bytes,
                                 [done_one](double) { done_one(); }, true);
        else
            rt_.client_port->transfer(id, r.network_bytes,
                                      [done_one](double) { done_one(); }, true);
        // CPU: the whole busy budget as one burst.
        st.cpu->execute(id, r.cpu_busy_seconds, done_one);
        // Memory.
        st.memory->access(id, bank_of(r), r.memory_bytes, r.memory_type,
                          [done_one](double) { done_one(); });
        // Storage.
        st.disk->io(id, lbn_of(r), r.storage_bytes, r.storage_type,
                    [done_one](double) { done_one(); });
    }

private:
    [[nodiscard]] std::uint32_t bank_of(const SyntheticRequest& r) const {
        return r.bank % cfg_.memory.banks;
    }
    [[nodiscard]] std::uint64_t lbn_of(const SyntheticRequest& r) const {
        return std::min<std::uint64_t>(r.lbn, cfg_.disk.lbn_count - 1);
    }

    static std::uint64_t split(std::uint64_t total, std::size_t n) {
        return n <= 1 ? total : total / n;
    }

    void execute_phase(std::uint64_t id, const SyntheticRequest& r,
                       const PhaseCounts& counts, std::size_t server,
                       const std::string& phase, std::function<void()> next) {
        ServerStack& st = *rt_.servers[server];
        if (phase == "net.rx") {
            const bool payload = r.type == trace::IoType::kWrite;
            st.ingress->transfer(
                id,
                payload ? split(r.network_bytes, counts.rx) : cfg_.control_bytes,
                [next = std::move(next)](double) { next(); }, payload);
        } else if (phase == "net.tx") {
            const bool payload = r.type == trace::IoType::kRead;
            rt_.client_port->transfer(
                id,
                payload ? split(r.network_bytes, counts.tx) : cfg_.control_bytes,
                [next = std::move(next)](double) { next(); }, payload);
        } else if (phase == "cpu.verify") {
            st.cpu->execute(id,
                            cfg_.cpu_verify_fraction * r.cpu_busy_seconds /
                                double(std::max<std::size_t>(1, counts.verify)),
                            std::move(next));
        } else if (phase == "cpu.aggregate") {
            st.cpu->execute(id,
                            (1.0 - cfg_.cpu_verify_fraction) * r.cpu_busy_seconds /
                                double(std::max<std::size_t>(1, counts.aggregate)),
                            std::move(next));
        } else if (phase == "mem.buffer") {
            st.memory->access(id, bank_of(r), split(r.memory_bytes, counts.mem),
                              r.memory_type,
                              [next = std::move(next)](double) { next(); });
        } else if (phase == "disk.io") {
            st.disk->io(id, lbn_of(r), split(r.storage_bytes, counts.disk),
                        r.storage_type,
                        [next = std::move(next)](double) { next(); });
        } else if (phase == "repl.forward") {
            // One replica hop: payload to the next server, which writes it.
            const std::size_t rep = (server + 1) % rt_.servers.size();
            ServerStack& rs = *rt_.servers[rep];
            rs.ingress->transfer(
                id, r.network_bytes,
                [this, id, &rs, r, next = std::move(next)](double) mutable {
                    rs.disk->io(id, lbn_of(r), r.storage_bytes, r.storage_type,
                                [next = std::move(next)](double) { next(); });
                },
                true);
        } else if (phase == "master.lookup") {
            // Control round trip on the client port.
            rt_.client_port->transfer(
                id, cfg_.control_bytes,
                [this, id, next = std::move(next)](double) mutable {
                    rt_.client_port->transfer(
                        id, cfg_.control_bytes,
                        [next = std::move(next)](double) { next(); }, false);
                },
                false);
        } else {
            ++rt_.unknown_phases;
            metrics().unknown.add();
            rt_.engine.schedule_after(0.0, std::move(next));
        }
    }

    Runtime& rt_;
    const ReplayConfig& cfg_;
};

}  // namespace

Replayer::Replayer(ReplayConfig cfg) : cfg_(cfg) {
    if (cfg_.n_servers == 0) throw std::invalid_argument("Replayer: n_servers 0");
    if (!(cfg_.cpu_verify_fraction > 0.0 && cfg_.cpu_verify_fraction < 1.0))
        throw std::invalid_argument("Replayer: cpu_verify_fraction outside (0,1)");
}

ReplayResult Replayer::replay(const SyntheticWorkload& workload,
                              ReplayMode mode) const {
    return replay_with_ids(workload, mode, 0);
}

ReplayResult Replayer::replay_sharded(const SyntheticWorkload& workload,
                                      ReplayMode mode) const {
    if (workload.empty())
        throw std::invalid_argument("Replayer::replay_sharded: empty workload");
    const std::size_t shards = cfg_.n_servers;
    if (shards <= 1) return replay(workload, mode);

    // Partition by server tag, preserving arrival order within a shard.
    std::vector<SyntheticWorkload> parts(shards);
    for (auto& p : parts) p.model_name = workload.model_name;
    for (const auto& r : workload.requests) {
        auto& p = parts[std::size_t(r.server % shards)];
        p.requests.push_back(r);
        p.requests.back().server = 0;
    }
    // Each shard's request ids start after the previous shard's range, so
    // merged traces keep globally-unique ids no matter the schedule.
    std::vector<std::uint64_t> base_id(shards, 0);
    std::uint64_t next_id = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        base_id[s] = next_id;
        next_id += parts[s].requests.size();
    }

    ReplayConfig shard_cfg = cfg_;
    shard_cfg.n_servers = 1;
    const Replayer shard_replayer(shard_cfg);
    std::vector<std::optional<ReplayResult>> results(shards);
    par::pool().parallel_for(shards, [&](std::size_t s) {
        if (parts[s].requests.empty()) return;  // idle server: nothing to run
        results[s] = shard_replayer.replay_with_ids(parts[s], mode, base_id[s]);
    });

    // Merge by shard index (idle shards count as 0-utilization servers).
    ReplayResult out;
    for (std::size_t s = 0; s < shards; ++s) {
        if (!results[s]) continue;
        ReplayResult& r = *results[s];
        out.traces.merge(r.traces);
        out.latencies.insert(out.latencies.end(), r.latencies.begin(),
                             r.latencies.end());
        out.network_drops += r.network_drops;
        out.network_timeouts += r.network_timeouts;
        out.unknown_phases += r.unknown_phases;
        out.mean_cpu_utilization += r.mean_cpu_utilization;
        out.mean_disk_utilization += r.mean_disk_utilization;
        out.duration = std::max(out.duration, r.duration);
    }
    out.mean_cpu_utilization /= double(shards);
    out.mean_disk_utilization /= double(shards);
    out.traces.sort_by_time();
    return out;
}

ReplayResult Replayer::replay_with_ids(const SyntheticWorkload& workload,
                                       ReplayMode mode,
                                       std::uint64_t base_id) const {
    if (workload.empty())
        throw std::invalid_argument("Replayer::replay: empty workload");
    Runtime rt(cfg_);
    Execution exec(rt, cfg_);
    std::uint64_t id = base_id;
    for (const auto& r : workload.requests) {
        const std::uint64_t rid = id++;
        const std::size_t server = std::size_t(r.server % rt.servers.size());
        rt.engine.schedule_at(r.time, [&exec, rid, r, server, mode] {
            // A request with no phase list cannot be replayed in order —
            // fall back to concurrent stressing.
            if (mode == ReplayMode::kStructured && !r.phases.empty())
                exec.run_structured(rid, r, server);
            else
                exec.run_independent(rid, r, server);
        });
    }
    rt.engine.run();
    ReplayResult out;
    out.traces = std::move(rt.traces);
    out.traces.sort_by_time();
    out.latencies = std::move(rt.latencies);
    out.network_drops = rt.client_port->drops();
    out.network_timeouts = rt.client_port->timeouts();
    for (const auto& s : rt.servers) {
        out.network_drops += s->ingress->drops();
        out.network_timeouts += s->ingress->timeouts();
        out.mean_cpu_utilization += s->cpu->utilization();
        out.mean_disk_utilization += s->disk->utilization();
    }
    out.mean_cpu_utilization /= double(rt.servers.size());
    out.mean_disk_utilization /= double(rt.servers.size());
    out.duration = rt.engine.now();
    out.unknown_phases = rt.unknown_phases;
    return out;
}

}  // namespace kooza::core
