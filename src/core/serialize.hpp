// Model persistence: save a trained ServerModel to a text file and load
// it back. A trained model is the product the paper's methodology hands
// to downstream studies ("evaluating various system design challenges
// without the need for access to real applications"), so it must outlive
// the process that trained it. The format is a line/token-oriented text
// encoding (version-tagged, human-inspectable, no external deps).
#pragma once

#include <filesystem>
#include <iosfwd>

#include "core/model.hpp"
#include "stats/distributions.hpp"

namespace kooza::core {

/// Write `model` to a stream / file. Throws std::runtime_error on I/O
/// failure and std::invalid_argument on unserializable content (e.g. a
/// distribution family the format does not know).
void save_model(const ServerModel& model, std::ostream& os);
void save_model(const ServerModel& model, const std::filesystem::path& file);

/// Read a model previously written by save_model. Throws
/// std::runtime_error with a token-level message on malformed input.
[[nodiscard]] ServerModel load_model(std::istream& is);
[[nodiscard]] ServerModel load_model(const std::filesystem::path& file);

/// One-line encodings for the distribution vocabulary (exposed for tests
/// and for other persistence code).
void save_distribution(const stats::Distribution& d, std::ostream& os);
[[nodiscard]] std::unique_ptr<stats::Distribution> load_distribution(std::istream& is);

}  // namespace kooza::core
