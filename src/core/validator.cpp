#include "core/validator.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"

namespace kooza::core {

namespace {

MetricRow row(std::string subsystem, std::string metric, double original,
              double synthetic, std::string unit) {
    MetricRow r;
    r.subsystem = std::move(subsystem);
    r.metric = std::move(metric);
    r.original = original;
    r.synthetic = synthetic;
    const auto v = stats::variation(synthetic, original);
    r.variation_pct = v.value;
    r.absolute = v.absolute;
    r.unit = std::move(unit);
    return r;
}

/// Quantile that tolerates the degenerate sides admission control can
/// produce (a rejected-out phase has no completed requests): empty input
/// reports 0 so the row falls back to the zero-baseline absolute-
/// deviation convention instead of throwing mid-table.
double quantile_or_zero(const std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    return stats::quantile(v, q);
}

/// Goodput in completed requests/second over the feature set's span
/// (first arrival to last completion); 0 for empty or instantaneous sets.
double goodput_of(const std::vector<trace::RequestFeatures>& fs) {
    if (fs.empty()) return 0.0;
    double lo = fs.front().arrival, hi = fs.front().arrival + fs.front().latency;
    for (const auto& f : fs) {
        lo = std::min(lo, f.arrival);
        hi = std::max(hi, f.arrival + f.latency);
    }
    return hi > lo ? double(fs.size()) / (hi - lo) : 0.0;
}

std::string fmt_value(double v, const std::string& unit) {
    std::ostringstream os;
    if (unit == "bytes") {
        if (v >= double(1ull << 20))
            os << std::fixed << std::setprecision(2) << v / double(1ull << 20) << " MB";
        else if (v >= 1024.0)
            os << std::fixed << std::setprecision(1) << v / 1024.0 << " KB";
        else
            os << std::fixed << std::setprecision(0) << v << " B";
    } else if (unit == "%") {
        os << std::fixed << std::setprecision(2) << v * 100.0 << " %";
    } else if (unit == "ms") {
        os << std::fixed << std::setprecision(2) << v * 1e3 << " ms";
    } else {
        os << std::setprecision(4) << v;
    }
    return os.str();
}

}  // namespace

std::string MetricRow::to_string() const {
    std::ostringstream os;
    os << std::left << std::setw(12) << subsystem << std::setw(16) << metric
       << std::right << std::setw(12) << fmt_value(original, unit) << std::setw(12)
       << fmt_value(synthetic, unit);
    if (absolute) {
        // Zero baseline: no percentage exists, show the deviation in the
        // row's own unit (e.g. "+16.0 KB" rather than "1638400.00%").
        os << std::setw(10) << ("+" + fmt_value(variation_pct, unit));
    } else {
        os << std::setw(9) << std::fixed << std::setprecision(2) << variation_pct
           << "%";
    }
    return os.str();
}

double ValidationReport::max_feature_variation() const {
    double v = 0.0;
    for (const auto& r : rows)
        if (r.subsystem != "Performance" && !r.absolute)
            v = std::max(v, r.variation_pct);
    return v;
}

double ValidationReport::latency_variation() const {
    for (const auto& r : rows)
        if (r.subsystem == "Performance") return r.variation_pct;
    return 0.0;
}

std::string ValidationReport::to_table() const {
    std::ostringstream os;
    os << "== " << model_name << " ==\n";
    os << std::left << std::setw(12) << "Subsystem" << std::setw(16) << "Metric"
       << std::right << std::setw(12) << "Original" << std::setw(12) << "Synthetic"
       << std::setw(10) << "Variation" << "\n";
    os << std::string(62, '-') << "\n";
    for (const auto& r : rows) os << r.to_string() << "\n";
    if (unknown_phases > 0)
        os << "WARNING: replay skipped " << unknown_phases
           << " unknown phase(s); synthetic columns understate request cost "
              "(core.replayer.unknown_phases_total)\n";
    return os.str();
}

ValidationReport compare_features(const std::vector<trace::RequestFeatures>& original,
                                  const std::vector<trace::RequestFeatures>& synthetic,
                                  std::string model_name) {
    // Empty sides are legal (admission control can reject an entire
    // phase): every row degrades to the zero-baseline stats::variation{}
    // convention (0-vs-0 -> 0%, else absolute deviation) instead of
    // throwing while the table is being rendered.
    ValidationReport rep;
    rep.model_name = std::move(model_name);
    auto mean_of = [](std::vector<double> v) { return stats::mean(v); };
    rep.rows.push_back(row("Network", "Request Size",
                           mean_of(trace::column_network_bytes(original)),
                           mean_of(trace::column_network_bytes(synthetic)), "bytes"));
    rep.rows.push_back(row("Processor", "CPU Utilization",
                           mean_of(trace::column_cpu_utilization(original)),
                           mean_of(trace::column_cpu_utilization(synthetic)), "%"));
    rep.rows.push_back(row("Memory", "Size",
                           mean_of(trace::column_memory_bytes(original)),
                           mean_of(trace::column_memory_bytes(synthetic)), "bytes"));
    rep.rows.push_back(row("Storage", "Size",
                           mean_of(trace::column_storage_bytes(original)),
                           mean_of(trace::column_storage_bytes(synthetic)), "bytes"));
    // The mean-latency row stays first among Performance rows:
    // latency_variation() reports it, and the quantile rows below make
    // tail behaviour first-class without disturbing that contract (or
    // max_feature_variation(), which skips Performance entirely).
    rep.rows.push_back(row("Performance", "Latency",
                           mean_of(trace::column_latency(original)),
                           mean_of(trace::column_latency(synthetic)), "ms"));
    const auto lat_orig = trace::column_latency(original);
    const auto lat_syn = trace::column_latency(synthetic);
    rep.rows.push_back(row("Performance", "Latency p50",
                           quantile_or_zero(lat_orig, 0.50),
                           quantile_or_zero(lat_syn, 0.50), "ms"));
    rep.rows.push_back(row("Performance", "Latency p95",
                           quantile_or_zero(lat_orig, 0.95),
                           quantile_or_zero(lat_syn, 0.95), "ms"));
    rep.rows.push_back(row("Performance", "Latency p99",
                           quantile_or_zero(lat_orig, 0.99),
                           quantile_or_zero(lat_syn, 0.99), "ms"));
    rep.rows.push_back(row("Performance", "Goodput", goodput_of(original),
                           goodput_of(synthetic), "req/s"));
    return rep;
}

ValidationReport compare_single(const trace::RequestFeatures& original,
                                const trace::RequestFeatures& synthetic,
                                std::string label) {
    ValidationReport rep;
    rep.model_name = std::move(label);
    rep.rows.push_back(row("Network", "Request Size", double(original.network_bytes),
                           double(synthetic.network_bytes), "bytes"));
    rep.rows.push_back(row("Processor", "CPU Utilization", original.cpu_utilization,
                           synthetic.cpu_utilization, "%"));
    rep.rows.push_back(row("Memory", "Size", double(original.memory_bytes),
                           double(synthetic.memory_bytes), "bytes"));
    rep.rows.push_back(row("Memory", "Type",
                           original.memory_type == trace::IoType::kWrite ? 1.0 : 0.0,
                           synthetic.memory_type == trace::IoType::kWrite ? 1.0 : 0.0,
                           "flag"));
    rep.rows.push_back(row("Storage", "Size", double(original.storage_bytes),
                           double(synthetic.storage_bytes), "bytes"));
    rep.rows.push_back(row("Storage", "Type",
                           original.storage_type == trace::IoType::kWrite ? 1.0 : 0.0,
                           synthetic.storage_type == trace::IoType::kWrite ? 1.0 : 0.0,
                           "flag"));
    rep.rows.push_back(
        row("Performance", "Latency", original.latency, synthetic.latency, "ms"));
    return rep;
}

double latency_ks(const std::vector<trace::RequestFeatures>& original,
                  const std::vector<trace::RequestFeatures>& synthetic) {
    // An empty side has no empirical CDF to compare against — report 0
    // (no measurable distance) rather than throwing; callers reached
    // here with fully-rejected phases under admission control.
    if (original.empty() || synthetic.empty()) return 0.0;
    return stats::ks_statistic_two_sample(trace::column_latency(original),
                                          trace::column_latency(synthetic));
}

}  // namespace kooza::core
