#include "core/serialize.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "markov/discretizer.hpp"
#include "stats/empirical.hpp"

namespace kooza::core {

namespace {

constexpr const char* kMagic = "kooza-model";
constexpr const char* kVersion = "v1";

[[noreturn]] void bad(const std::string& what) {
    throw std::runtime_error("load_model: " + what);
}

std::string next_token(std::istream& is, const char* what) {
    std::string tok;
    if (!(is >> tok)) bad(std::string("unexpected end of input, wanted ") + what);
    return tok;
}

double next_double(std::istream& is, const char* what) {
    const auto tok = next_token(is, what);
    try {
        return std::stod(tok);
    } catch (const std::exception&) {
        bad(std::string("bad number '") + tok + "' for " + what);
    }
}

std::size_t next_size(std::istream& is, const char* what) {
    const auto tok = next_token(is, what);
    try {
        return std::stoull(tok);
    } catch (const std::exception&) {
        bad(std::string("bad count '") + tok + "' for " + what);
    }
}

void expect(std::istream& is, const char* keyword) {
    const auto tok = next_token(is, keyword);
    if (tok != keyword) bad("expected '" + std::string(keyword) + "', got '" + tok + "'");
}

// ---- Markov chain ---------------------------------------------------------

void save_chain(const markov::MarkovChain& c, std::ostream& os) {
    os << "chain " << c.n_states() << "\ninit";
    for (double p : c.initial()) os << ' ' << p;
    os << "\n";
    for (std::size_t i = 0; i < c.n_states(); ++i) {
        os << "row";
        for (std::size_t j = 0; j < c.n_states(); ++j) os << ' ' << c.transition(i, j);
        os << "\n";
    }
}

markov::MarkovChain load_chain(std::istream& is) {
    expect(is, "chain");
    const std::size_t n = next_size(is, "chain size");
    expect(is, "init");
    std::vector<double> init(n);
    for (auto& p : init) p = next_double(is, "initial probability");
    std::vector<std::vector<double>> rows(n, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
        expect(is, "row");
        for (std::size_t j = 0; j < n; ++j)
            rows[i][j] = next_double(is, "transition probability");
    }
    return markov::MarkovChain(std::move(rows), std::move(init));
}

// ---- Annotated chain ------------------------------------------------------

void save_annotated(const markov::AnnotatedMarkovChain& m, std::ostream& os) {
    save_chain(m.chain(), os);
    const auto names = m.feature_names();
    os << "features " << names.size() << "\n";
    for (std::size_t s = 0; s < m.chain().n_states(); ++s)
        for (const auto& name : names) {
            os << "feature " << s << ' ' << name << ' ';
            save_distribution(m.feature(s, name), os);
        }
}

markov::AnnotatedMarkovChain load_annotated(std::istream& is) {
    auto chain = load_chain(is);
    expect(is, "features");
    const std::size_t n_features = next_size(is, "feature count");
    std::vector<std::map<std::string, std::unique_ptr<stats::Distribution>>> per_state(
        chain.n_states());
    for (std::size_t s = 0; s < chain.n_states(); ++s)
        for (std::size_t f = 0; f < n_features; ++f) {
            expect(is, "feature");
            const std::size_t state = next_size(is, "feature state");
            if (state >= chain.n_states()) bad("feature state out of range");
            const auto name = next_token(is, "feature name");
            per_state[state][name] = load_distribution(is);
        }
    return markov::AnnotatedMarkovChain::from_parts(std::move(chain),
                                                    std::move(per_state));
}

// ---- Structure queue ------------------------------------------------------

void save_structure(const StructureQueue& q, std::ostream& os) {
    const auto names = q.phase_names();
    os << "structure " << q.training_traces() << ' ' << q.variants().size() << ' '
       << names.size() << "\n";
    for (const auto& v : q.variants()) {
        os << "variant " << v.count << ' ' << v.phases.size();
        for (const auto& p : v.phases) os << ' ' << p;
        os << "\n";
    }
    for (const auto& name : names) {
        os << "duration " << name << ' ';
        save_distribution(q.phase_duration(name), os);
    }
}

StructureQueue load_structure(std::istream& is) {
    expect(is, "structure");
    const std::size_t trained = next_size(is, "structure trained count");
    const std::size_t n_variants = next_size(is, "variant count");
    const std::size_t n_durations = next_size(is, "duration count");
    std::vector<StructureQueue::Variant> variants;
    for (std::size_t v = 0; v < n_variants; ++v) {
        expect(is, "variant");
        StructureQueue::Variant var;
        var.count = next_size(is, "variant count");
        const std::size_t len = next_size(is, "variant length");
        for (std::size_t i = 0; i < len; ++i)
            var.phases.push_back(next_token(is, "phase name"));
        variants.push_back(std::move(var));
    }
    std::map<std::string, std::unique_ptr<stats::Distribution>> durations;
    for (std::size_t d = 0; d < n_durations; ++d) {
        expect(is, "duration");
        const auto name = next_token(is, "duration phase");
        durations[name] = load_distribution(is);
    }
    return StructureQueue::from_parts(std::move(variants), std::move(durations),
                                      trained);
}

// ---- Discretizers ---------------------------------------------------------

void save_discretizer(const markov::Discretizer& d, std::ostream& os) {
    if (auto* lbn = dynamic_cast<const markov::LbnRangeDiscretizer*>(&d)) {
        os << "states lbn " << lbn->lbn_count() << ' ' << lbn->n_states() << "\n";
    } else if (auto* util = dynamic_cast<const markov::UtilizationDiscretizer*>(&d)) {
        os << "states util " << util->n_states() << "\n";
    } else if (auto* bank = dynamic_cast<const markov::BankDiscretizer*>(&d)) {
        os << "states banks " << bank->n_states() << "\n";
    } else if (auto* eq = dynamic_cast<const markov::EqualWidthDiscretizer*>(&d)) {
        os << "states equal " << eq->lo() << ' ' << eq->hi() << ' ' << eq->n_states()
           << "\n";
    } else {
        throw std::invalid_argument("save_model: unserializable discretizer: " +
                                    d.describe());
    }
}

std::unique_ptr<markov::Discretizer> load_discretizer(std::istream& is) {
    expect(is, "states");
    const auto kind = next_token(is, "discretizer kind");
    if (kind == "lbn") {
        const auto count = std::uint64_t(next_size(is, "lbn count"));
        const auto ranges = next_size(is, "lbn ranges");
        return std::make_unique<markov::LbnRangeDiscretizer>(count, ranges);
    }
    if (kind == "util")
        return std::make_unique<markov::UtilizationDiscretizer>(
            next_size(is, "util levels"));
    if (kind == "banks")
        return std::make_unique<markov::BankDiscretizer>(next_size(is, "banks"));
    if (kind == "equal") {
        const double lo = next_double(is, "equal lo");
        const double hi = next_double(is, "equal hi");
        const std::size_t bins = next_size(is, "equal bins");
        return std::make_unique<markov::EqualWidthDiscretizer>(lo, hi, bins);
    }
    bad("unknown discretizer kind '" + kind + "'");
}

// ---- Arrival processes ----------------------------------------------------

void save_arrivals(const queueing::ArrivalProcess& a, std::ostream& os) {
    if (auto* p = dynamic_cast<const queueing::PoissonArrivals*>(&a)) {
        os << "arrivals poisson " << p->mean_rate() << "\n";
    } else if (auto* d = dynamic_cast<const queueing::DeterministicArrivals*>(&a)) {
        os << "arrivals deterministic " << d->mean_rate() << "\n";
    } else if (auto* m = dynamic_cast<const queueing::MmppArrivals*>(&a)) {
        os << "arrivals mmpp " << m->rate(0) << ' ' << m->rate(1) << ' '
           << m->switch_rate(0) << ' ' << m->switch_rate(1) << "\n";
    } else if (auto* t = dynamic_cast<const queueing::TraceArrivals*>(&a)) {
        os << "arrivals trace " << t->gaps().size();
        for (double g : t->gaps()) os << ' ' << g;
        os << "\n";
    } else {
        throw std::invalid_argument("save_model: unserializable arrival process: " +
                                    a.describe());
    }
}

std::unique_ptr<queueing::ArrivalProcess> load_arrivals(std::istream& is) {
    expect(is, "arrivals");
    const auto kind = next_token(is, "arrival kind");
    if (kind == "poisson")
        return std::make_unique<queueing::PoissonArrivals>(
            next_double(is, "poisson rate"));
    if (kind == "deterministic")
        return std::make_unique<queueing::DeterministicArrivals>(
            next_double(is, "deterministic rate"));
    if (kind == "mmpp") {
        const double r0 = next_double(is, "mmpp rate0");
        const double r1 = next_double(is, "mmpp rate1");
        const double s0 = next_double(is, "mmpp switch0");
        const double s1 = next_double(is, "mmpp switch1");
        return std::make_unique<queueing::MmppArrivals>(r0, r1, s0, s1);
    }
    if (kind == "trace") {
        const std::size_t n = next_size(is, "trace gap count");
        std::vector<double> gaps(n);
        for (auto& g : gaps) g = next_double(is, "trace gap");
        return std::make_unique<queueing::TraceArrivals>(std::move(gaps));
    }
    bad("unknown arrival kind '" + kind + "'");
}

// ---- Type model -----------------------------------------------------------

void save_type_model(const TypeModel& tm, std::ostream& os) {
    save_annotated(tm.storage, os);
    save_annotated(tm.memory, os);
    save_annotated(tm.cpu, os);
    save_structure(tm.structure, os);
}

TypeModel load_type_model(std::istream& is) {
    auto storage = load_annotated(is);
    auto memory = load_annotated(is);
    auto cpu = load_annotated(is);
    auto structure = load_structure(is);
    return TypeModel{std::move(storage), std::move(memory), std::move(cpu),
                     std::move(structure)};
}

}  // namespace

// ---- Distributions ----------------------------------------------------

void save_distribution(const stats::Distribution& d, std::ostream& os) {
    os << "dist ";
    if (auto* det = dynamic_cast<const stats::Deterministic*>(&d)) {
        os << "deterministic " << det->value();
    } else if (auto* u = dynamic_cast<const stats::Uniform*>(&d)) {
        os << "uniform " << u->lo() << ' ' << u->hi();
    } else if (auto* e = dynamic_cast<const stats::Exponential*>(&d)) {
        os << "exponential " << e->lambda();
    } else if (auto* n = dynamic_cast<const stats::Normal*>(&d)) {
        os << "normal " << n->mean() << ' ' << std::sqrt(n->variance());
    } else if (auto* ln = dynamic_cast<const stats::LogNormal*>(&d)) {
        os << "lognormal " << ln->mu() << ' ' << ln->sigma();
    } else if (auto* p = dynamic_cast<const stats::Pareto*>(&d)) {
        os << "pareto " << p->xm() << ' ' << p->alpha();
    } else if (auto* w = dynamic_cast<const stats::Weibull*>(&d)) {
        os << "weibull " << w->shape() << ' ' << w->scale();
    } else if (auto* g = dynamic_cast<const stats::Gamma*>(&d)) {
        const double mean = g->mean(), var = g->variance();
        os << "gamma " << mean * mean / var << ' ' << var / mean;
    } else if (auto* emp = dynamic_cast<const stats::Empirical*>(&d)) {
        os << "empirical " << emp->size();
        for (double x : emp->sorted()) os << ' ' << x;
    } else {
        throw std::invalid_argument("save_model: unserializable distribution: " +
                                    d.describe());
    }
    os << "\n";
}

std::unique_ptr<stats::Distribution> load_distribution(std::istream& is) {
    expect(is, "dist");
    const auto kind = next_token(is, "distribution family");
    if (kind == "deterministic")
        return std::make_unique<stats::Deterministic>(next_double(is, "value"));
    if (kind == "uniform") {
        const double lo = next_double(is, "lo");
        const double hi = next_double(is, "hi");
        return std::make_unique<stats::Uniform>(lo, hi);
    }
    if (kind == "exponential")
        return std::make_unique<stats::Exponential>(next_double(is, "lambda"));
    if (kind == "normal") {
        const double mean = next_double(is, "mean");
        const double sd = next_double(is, "sd");
        return std::make_unique<stats::Normal>(mean, sd);
    }
    if (kind == "lognormal") {
        const double mu = next_double(is, "mu");
        const double sigma = next_double(is, "sigma");
        return std::make_unique<stats::LogNormal>(mu, sigma);
    }
    if (kind == "pareto") {
        const double xm = next_double(is, "xm");
        const double alpha = next_double(is, "alpha");
        return std::make_unique<stats::Pareto>(xm, alpha);
    }
    if (kind == "weibull") {
        const double shape = next_double(is, "shape");
        const double scale = next_double(is, "scale");
        return std::make_unique<stats::Weibull>(shape, scale);
    }
    if (kind == "gamma") {
        const double shape = next_double(is, "shape");
        const double scale = next_double(is, "scale");
        return std::make_unique<stats::Gamma>(shape, scale);
    }
    if (kind == "empirical") {
        const std::size_t n = next_size(is, "empirical size");
        std::vector<double> xs(n);
        for (auto& x : xs) x = next_double(is, "empirical sample");
        return std::make_unique<stats::Empirical>(xs);
    }
    bad("unknown distribution family '" + kind + "'");
}

// ---- Model ------------------------------------------------------------

void save_model(const ServerModel& model, std::ostream& os) {
    os << std::setprecision(17);
    os << kMagic << ' ' << kVersion << "\n";
    os << "name " << model.workload_name() << "\n";
    os << "read_fraction " << model.read_fraction() << "\n";
    os << "verify_fraction " << model.cpu_verify_fraction() << "\n";
    save_arrivals(model.arrivals(), os);
    save_discretizer(model.lbn_states(), os);
    save_discretizer(model.bank_states(), os);
    save_discretizer(model.util_states(), os);
    os << "types " << (model.has_reads() ? 1 : 0) << ' '
       << (model.has_writes() ? 1 : 0) << "\n";
    if (model.has_reads()) save_type_model(model.reads(), os);
    if (model.has_writes()) save_type_model(model.writes(), os);
    if (!os) throw std::runtime_error("save_model: stream write failed");
}

void save_model(const ServerModel& model, const std::filesystem::path& file) {
    std::ofstream os(file);
    if (!os) throw std::runtime_error("save_model: cannot open " + file.string());
    save_model(model, os);
}

ServerModel load_model(std::istream& is) {
    expect(is, kMagic);
    expect(is, kVersion);
    expect(is, "name");
    std::string name;
    std::getline(is >> std::ws, name);
    expect(is, "read_fraction");
    const double read_fraction = next_double(is, "read_fraction");
    expect(is, "verify_fraction");
    const double verify_fraction = next_double(is, "verify_fraction");
    auto arrivals = load_arrivals(is);
    auto lbn = load_discretizer(is);
    auto banks = load_discretizer(is);
    auto util = load_discretizer(is);
    expect(is, "types");
    const bool has_read = next_size(is, "read flag") != 0;
    const bool has_write = next_size(is, "write flag") != 0;
    std::optional<TypeModel> read, write;
    if (has_read) read = load_type_model(is);
    if (has_write) write = load_type_model(is);
    return ServerModel(std::move(name), std::move(arrivals), read_fraction,
                       std::move(read), std::move(write), std::move(lbn),
                       std::move(banks), std::move(util), verify_fraction);
}

ServerModel load_model(const std::filesystem::path& file) {
    std::ifstream is(file);
    if (!is) throw std::runtime_error("load_model: cannot open " + file.string());
    return load_model(is);
}

}  // namespace kooza::core
