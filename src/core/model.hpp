// The KOOZA per-server workload model (paper Fig. 2): four simple
// sub-models — a network queueing model (arrival process), and Markov
// chains for storage (LBN-range states), memory (bank states) and CPU
// (utilization-level states), each state annotated with request-feature
// distributions — wired together by a per-request-type structure queue.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/structure.hpp"
#include "markov/annotated.hpp"
#include "markov/discretizer.hpp"
#include "queueing/arrival.hpp"

namespace kooza::core {

/// Feature names used on the chains (shared trainer/generator vocabulary).
namespace feature {
inline constexpr const char* kSize = "size";       ///< subsystem bytes
inline constexpr const char* kNet = "net";         ///< request payload bytes
inline constexpr const char* kType = "type";       ///< 0 = read, 1 = write
inline constexpr const char* kBusy = "busy";       ///< CPU busy seconds
}  // namespace feature

/// The three annotated chains plus the structure queue for one request
/// type (read or write). Move-only (chains own distributions).
struct TypeModel {
    markov::AnnotatedMarkovChain storage;  ///< states: LBN ranges
    markov::AnnotatedMarkovChain memory;   ///< states: banks
    markov::AnnotatedMarkovChain cpu;      ///< states: utilization levels
    StructureQueue structure;

    [[nodiscard]] std::size_t parameter_count() const {
        return storage.parameter_count() + memory.parameter_count() +
               cpu.parameter_count() + structure.parameter_count();
    }
};

class ServerModel {
public:
    ServerModel(std::string workload_name,
                std::unique_ptr<queueing::ArrivalProcess> arrivals,
                double read_fraction, std::optional<TypeModel> read_model,
                std::optional<TypeModel> write_model,
                std::unique_ptr<markov::Discretizer> lbn_states,
                std::unique_ptr<markov::Discretizer> bank_states,
                std::unique_ptr<markov::Discretizer> util_states,
                double cpu_verify_fraction);

    [[nodiscard]] const std::string& workload_name() const noexcept { return name_; }
    [[nodiscard]] const queueing::ArrivalProcess& arrivals() const noexcept {
        return *arrivals_;
    }
    [[nodiscard]] queueing::ArrivalProcess& arrivals() noexcept { return *arrivals_; }
    [[nodiscard]] double read_fraction() const noexcept { return read_fraction_; }

    [[nodiscard]] bool has_reads() const noexcept { return read_.has_value(); }
    [[nodiscard]] bool has_writes() const noexcept { return write_.has_value(); }
    /// Throws std::logic_error if the type was not present in training.
    [[nodiscard]] const TypeModel& reads() const;
    [[nodiscard]] const TypeModel& writes() const;

    [[nodiscard]] const markov::Discretizer& lbn_states() const noexcept {
        return *lbn_states_;
    }
    [[nodiscard]] const markov::Discretizer& bank_states() const noexcept {
        return *bank_states_;
    }
    [[nodiscard]] const markov::Discretizer& util_states() const noexcept {
        return *util_states_;
    }

    /// Learned split of CPU work before/after the I/O phase.
    [[nodiscard]] double cpu_verify_fraction() const noexcept {
        return cpu_verify_fraction_;
    }

    /// Total model size across all sub-models — Table 1's complexity axis.
    [[nodiscard]] std::size_t parameter_count() const;

    [[nodiscard]] std::string describe() const;

private:
    std::string name_;
    std::unique_ptr<queueing::ArrivalProcess> arrivals_;
    double read_fraction_;
    std::optional<TypeModel> read_;
    std::optional<TypeModel> write_;
    std::unique_ptr<markov::Discretizer> lbn_states_;
    std::unique_ptr<markov::Discretizer> bank_states_;
    std::unique_ptr<markov::Discretizer> util_states_;
    double cpu_verify_fraction_;
};

}  // namespace kooza::core
