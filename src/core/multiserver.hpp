// Multi-server model composition.
//
// Paper, Section 4: "Scaling to multiple servers in order to simulate
// real-application scenarios requires multiple instances of the model."
// A ClusterModel is exactly that: one trained ServerModel per monitored
// server (fed by Cluster::traces_for_server). Generation runs every
// instance over a common horizon and merges the streams, tagging each
// request with its server so the multi-server replayer reproduces the
// per-server load skew (hot shards, incast fan-in) a single averaged
// model would wash out.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "trace/traceset.hpp"

namespace kooza::core {

class ClusterModel {
public:
    /// Train one ServerModel per entry of `per_server` (the i-th trace set
    /// must be server i's view). Throws if any server's trace has no
    /// completed requests — monitor long enough that every server saw
    /// traffic, or exclude idle servers.
    static ClusterModel train(std::span<const trace::TraceSet> per_server,
                              TrainerConfig cfg = {});

    [[nodiscard]] std::size_t n_servers() const noexcept { return servers_.size(); }
    [[nodiscard]] const ServerModel& server(std::size_t i) const {
        return servers_.at(i);
    }

    /// Generate `duration` seconds of load: each server instance produces
    /// its own arrival-timed stream (at its learned rate), streams are
    /// merged by time, and every request carries its server id.
    [[nodiscard]] SyntheticWorkload generate(double duration, sim::Rng& rng) const;

    /// Sum of the per-instance model sizes.
    [[nodiscard]] std::size_t parameter_count() const;

    /// Learned per-server arrival rates (the load-skew signature).
    [[nodiscard]] std::vector<double> arrival_rates() const;

    [[nodiscard]] std::string describe() const;

private:
    explicit ClusterModel(std::vector<ServerModel> servers)
        : servers_(std::move(servers)) {}
    std::vector<ServerModel> servers_;
};

}  // namespace kooza::core
