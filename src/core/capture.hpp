// Capture pipeline stage: run a named workload profile on the GFS
// simulator and return the traces — the programmatic core of the
// kooza_capture tool, reusable from tests and benches. Records the
// capture-level metrics (requests completed/failed, sim-time request
// latency) under the core.capture.* namespace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gfs/config.hpp"
#include "stats/descriptive.hpp"
#include "trace/io.hpp"
#include "trace/traceset.hpp"
#include "workloads/profiles.hpp"

namespace kooza::core {

struct CaptureOptions {
    std::string profile = "micro";  ///< micro|oltp|websearch|streaming|logappend
    /// Workload source overrides, tried in this order; at most one may be
    /// set, and when all are empty `profile` drives the capture.
    std::string scenario;    ///< scenario-library name (workloads::make_scenario)
    std::string model_file;  ///< trained-model replay (core::save_model file)
    std::string replay_dir;  ///< trace-log replay (captured trace directory)
    std::size_t count = 500;        ///< requests (streaming: sessions = count/20+1)
    double rate = 20.0;             ///< arrivals/second
    double period = 60.0;           ///< scenario envelope period, seconds
    std::uint64_t seed = 42;
    std::size_t n_servers = 1;
    std::size_t replication = 0;  ///< 0 = GfsConfig default
    std::uint64_t span_sample_every = 1;
    double fault_rate = 0.0;  ///< crashes/second per server; 0 disables faults
    double mttr = 5.0;        ///< mean repair seconds (with faults)
    /// Non-empty: persist the captured traces there in `format`
    /// (kooza.trace/1 binary streams through trace::BinaryWriter).
    std::string out_dir;
    trace::Format format = trace::Format::kCsv;

    /// Stream records to `out_dir` (kooza.trace/1 binary) as the
    /// simulation emits them instead of materializing a TraceSet: peak
    /// memory stays flat in the horizon. Requires a non-empty out_dir;
    /// the result's `traces` member is left empty. The files are
    /// byte-identical to a materialized capture of the same options
    /// written with write_traces.
    bool stream = false;
    /// Records buffered per stream before a streamed chunk is flushed.
    std::size_t chunk_records = std::size_t(1) << 16;
    /// Keep Cluster's O(requests) latency vector (disable at scale).
    bool collect_latencies = true;

    /// Micro-profile size knobs (bench_scale uses switch-friendly sizes
    /// instead of the 4 MB default writes). 0 / negative = profile default.
    std::uint64_t read_size = 0;
    std::uint64_t write_size = 0;
    double read_fraction = -1.0;

    /// Closed-loop capture: replace the open-loop schedule with a
    /// workloads::ClosedLoopPool of `clients` x `outstanding` windows and
    /// exponential think time, refilled by request-completion callbacks.
    /// A closed-loop scenario name in `scenario` switches this on too.
    bool closed_loop = false;
    std::size_t clients = 8;
    std::size_t outstanding = 4;
    double think_time = 0.01;  ///< mean think seconds between completions

    /// Chunkserver admission control: "" = off, "queue" = wait in the
    /// bounded FIFO, "reject" = bounce immediately when out of tickets.
    /// Works for open- and closed-loop captures alike.
    std::string admission;
    /// >0 pins the ticket count (probing disabled) — the offline-optimal
    /// sweep knob. 0 = adaptive probing at the AdmissionConfig defaults.
    std::uint32_t admission_tickets = 0;
};

struct CaptureResult {
    trace::TraceSet traces;  ///< empty in stream mode (records on disk)
    double duration = 0.0;  ///< simulated seconds until the cluster drained
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t crashes = 0;  ///< 0 unless faults were enabled
    std::uint64_t repairs = 0;
    std::uint64_t records = 0;  ///< total records captured (either mode)
    std::uint64_t rejected = 0;  ///< admission-control bounces (subset of failed)
    /// Server 0's converged ticket count (AdmissionController::best_tickets);
    /// 0 when admission control was off.
    std::uint32_t converged_tickets = 0;
    /// End-to-end latency summary with p50/p95/p99 (empty when
    /// collect_latencies is off or nothing completed).
    stats::Summary latency{};
    double goodput = 0.0;  ///< completed requests per simulated second
};

/// Profile factory shared by run_capture and the tools. Returns nullptr
/// for an unknown name. read_size/write_size/read_fraction override the
/// micro profile's request sizes when positive.
[[nodiscard]] std::unique_ptr<workloads::Profile> make_profile(
    const std::string& name, std::size_t count, double rate,
    std::uint64_t read_size = 0, std::uint64_t write_size = 0,
    double read_fraction = -1.0);

/// Open the request schedule a capture with these options would pump:
/// the scenario / model-replay / trace-replay generator when one is
/// requested, else the named profile's stream. Deterministic in opts.
/// Throws std::invalid_argument on unknown names or conflicting sources.
[[nodiscard]] std::unique_ptr<workloads::ScheduleStream> make_capture_schedule(
    const CaptureOptions& opts);

/// Run one capture end to end: build the profile, configure the cluster
/// (with faults following the run to drain), pump the request schedule
/// through it, collect the traces and, when `out_dir` is set, persist
/// them in the requested format (or stream them as they are emitted with
/// opts.stream). Throws std::invalid_argument on an unknown profile.
[[nodiscard]] CaptureResult run_capture(const CaptureOptions& opts);

}  // namespace kooza::core
