// Capture pipeline stage: run a named workload profile on the GFS
// simulator and return the traces — the programmatic core of the
// kooza_capture tool, reusable from tests and benches. Records the
// capture-level metrics (requests completed/failed, sim-time request
// latency) under the core.capture.* namespace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gfs/config.hpp"
#include "trace/io.hpp"
#include "trace/traceset.hpp"
#include "workloads/profiles.hpp"

namespace kooza::core {

struct CaptureOptions {
    std::string profile = "micro";  ///< micro|oltp|websearch|streaming|logappend
    std::size_t count = 500;        ///< requests (streaming: sessions = count/20+1)
    double rate = 20.0;             ///< arrivals/second
    std::uint64_t seed = 42;
    std::size_t n_servers = 1;
    std::size_t replication = 0;  ///< 0 = GfsConfig default
    std::uint64_t span_sample_every = 1;
    double fault_rate = 0.0;  ///< crashes/second per server; 0 disables faults
    double mttr = 5.0;        ///< mean repair seconds (with faults)
    /// Non-empty: persist the captured traces there in `format`
    /// (kooza.trace/1 binary streams through trace::BinaryWriter).
    std::string out_dir;
    trace::Format format = trace::Format::kCsv;
};

struct CaptureResult {
    trace::TraceSet traces;
    double duration = 0.0;  ///< simulated seconds until the cluster drained
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t crashes = 0;  ///< 0 unless faults were enabled
    std::uint64_t repairs = 0;
};

/// Profile factory shared by run_capture and the tools. Returns nullptr
/// for an unknown name.
[[nodiscard]] std::unique_ptr<workloads::Profile> make_profile(
    const std::string& name, std::size_t count, double rate);

/// Run one capture end to end: build the profile, configure the cluster
/// (fault horizon covering the schedule when faults are on), run it,
/// collect the traces and, when `out_dir` is set, persist them in the
/// requested format. Throws std::invalid_argument on an unknown profile.
[[nodiscard]] CaptureResult run_capture(const CaptureOptions& opts);

}  // namespace kooza::core
