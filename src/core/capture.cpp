#include "core/capture.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/model_replay.hpp"
#include "gfs/admission.hpp"
#include "gfs/cluster.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "trace/streaming.hpp"
#include "workloads/closedloop.hpp"
#include "workloads/scenarios.hpp"

namespace kooza::core {

namespace {

struct CaptureMetrics {
    obs::Counter& runs = obs::counter("core.capture.runs_total");
    obs::Counter& requests = obs::counter("core.capture.requests_total");
    obs::Counter& failed = obs::counter("core.capture.failed_requests_total");
    obs::Counter& rejected = obs::counter("core.capture.rejected_requests_total");
    // Sim-clock capture span: deterministic, so it stays in golden exports.
    obs::Histogram& duration_ns =
        obs::histogram("core.capture.duration_ns", obs::Unit::kNanoseconds);
};

CaptureMetrics& metrics() {
    static CaptureMetrics m;
    return m;
}

}  // namespace

std::unique_ptr<workloads::Profile> make_profile(const std::string& name,
                                                 std::size_t count, double rate,
                                                 std::uint64_t read_size,
                                                 std::uint64_t write_size,
                                                 double read_fraction) {
    if (name == "micro") {
        workloads::MicroProfile::Params p{.count = count, .arrival_rate = rate};
        if (read_size > 0) p.read_size = read_size;
        if (write_size > 0) p.write_size = write_size;
        if (read_fraction >= 0.0) p.read_fraction = read_fraction;
        return std::make_unique<workloads::MicroProfile>(p);
    }
    if (name == "oltp")
        return std::make_unique<workloads::OltpProfile>(
            workloads::OltpProfile::Params{.count = count, .base_rate = rate});
    if (name == "websearch")
        return std::make_unique<workloads::WebSearchProfile>(
            workloads::WebSearchProfile::Params{.count = count,
                                                .arrival_rate = rate});
    if (name == "streaming")
        return std::make_unique<workloads::StreamingProfile>(
            workloads::StreamingProfile::Params{.sessions = count / 20 + 1,
                                                .session_rate = rate / 10.0});
    if (name == "logappend")
        return std::make_unique<workloads::LogAppendProfile>(
            workloads::LogAppendProfile::Params{.count = count,
                                                .arrival_rate = rate});
    return nullptr;
}

std::unique_ptr<workloads::ScheduleStream> make_capture_schedule(
    const CaptureOptions& opts) {
    const int sources = int(!opts.scenario.empty()) + int(!opts.model_file.empty()) +
                        int(!opts.replay_dir.empty());
    if (sources > 1)
        throw std::invalid_argument(
            "run_capture: scenario, model_file and replay_dir are mutually "
            "exclusive workload sources");

    if (!opts.scenario.empty()) {
        workloads::ScenarioParams sp;
        sp.count = opts.count;
        sp.rate = opts.rate;
        sp.seed = opts.seed;
        if (opts.read_size > 0) sp.read_size = opts.read_size;
        if (opts.write_size > 0) sp.write_size = opts.write_size;
        if (opts.period > 0.0) sp.period = opts.period;
        auto gen = workloads::make_scenario(opts.scenario, sp);
        if (!gen)
            throw std::invalid_argument("run_capture: unknown scenario: " +
                                        opts.scenario);
        return gen;
    }
    if (!opts.model_file.empty()) {
        ModelReplayGenerator::Params mp;
        mp.count = opts.count;
        mp.seed = opts.seed;
        return std::make_unique<ModelReplayGenerator>(
            std::filesystem::path(opts.model_file), mp);
    }
    if (!opts.replay_dir.empty())
        return std::make_unique<workloads::TraceReplayGenerator>(
            std::filesystem::path(opts.replay_dir));

    auto profile = make_profile(opts.profile, opts.count, opts.rate, opts.read_size,
                                opts.write_size, opts.read_fraction);
    if (!profile)
        throw std::invalid_argument("run_capture: unknown profile: " + opts.profile);
    return profile->open_stream(sim::Rng(opts.seed));
}

namespace {

/// Feeds the request schedule into the cluster one request at a time: a
/// pump event at request i's issue time submits it and pulls request
/// i+1. Pending engine events stay O(in-flight) instead of O(schedule),
/// which is what keeps a multi-million-request capture's memory flat.
/// Used in both capture modes so they run the identical event sequence.
struct SchedulePump {
    gfs::Cluster& cluster;
    std::unique_ptr<workloads::ScheduleStream> stream;

    void start() {
        for (const auto& [name, size] : stream->files())
            cluster.create_file(name, size);
        arm(stream->next());
    }

    void arm(std::optional<gfs::RequestSpec> spec) {
        if (!spec) return;
        cluster.engine().schedule_at(spec->time,
                                     [this, spec = std::move(*spec)]() mutable {
                                         cluster.submit(spec);
                                         arm(stream->next());
                                     });
    }
};

/// Closed-loop counterpart of SchedulePump: every client keeps
/// `outstanding` requests in flight, and each completion callback pulls
/// the next request for that client (arrival = now + think time). The
/// schedule therefore reacts to cluster latency instead of replaying a
/// fixed arrival list — the defining closed-loop feedback. Single
/// engine, synchronous refills: the event sequence stays deterministic.
struct ClosedLoopDriver {
    gfs::Cluster& cluster;
    workloads::ClosedLoopPool pool;

    void start() {
        for (const auto& [name, size] : pool.files())
            cluster.create_file(name, size);
        const auto& p = pool.params();
        for (std::uint32_t c = 0; c < p.clients; ++c)
            for (std::size_t w = 0; w < p.outstanding; ++w) launch(c, 0.0);
    }

    void launch(std::uint32_t client, double now) {
        auto spec = pool.next(client, now);
        if (!spec) return;  // budget spent: the window drains and run() ends
        cluster.submit(*spec, [this, client](double /*latency*/) {
            // Failures and rejections refill too — a closed-loop client
            // moves on to its next request either way.
            launch(client, cluster.engine().now());
        });
    }
};

/// The pool recipe behind a closed-loop capture: a named closed-loop
/// scenario when one is requested, else the CaptureOptions knobs.
workloads::ClosedLoopParams closed_loop_params(const CaptureOptions& opts) {
    if (!opts.scenario.empty()) {
        workloads::ScenarioParams sp;
        sp.count = opts.count;
        sp.rate = opts.rate;
        sp.seed = opts.seed;
        if (opts.read_size > 0) sp.read_size = opts.read_size;
        if (opts.write_size > 0) sp.write_size = opts.write_size;
        if (opts.period > 0.0) sp.period = opts.period;
        return workloads::make_closed_loop_scenario(opts.scenario, sp);
    }
    workloads::ClosedLoopParams p;
    p.clients = std::max<std::size_t>(1, opts.clients);
    p.outstanding = std::max<std::size_t>(1, opts.outstanding);
    p.think_time = std::max(0.0, opts.think_time);
    p.total = opts.count;
    p.seed = opts.seed;
    if (opts.read_size > 0) p.read_size = opts.read_size;
    if (opts.write_size > 0) p.write_size = opts.write_size;
    if (opts.read_fraction >= 0.0) p.read_fraction = opts.read_fraction;
    return p;
}

}  // namespace

CaptureResult run_capture(const CaptureOptions& opts) {
    const bool closed =
        opts.closed_loop || workloads::is_closed_loop_scenario(opts.scenario);
    if (closed && (!opts.model_file.empty() || !opts.replay_dir.empty()))
        throw std::invalid_argument(
            "run_capture: closed-loop capture generates its own requests; "
            "model_file/replay_dir replay sources do not apply");
    if (opts.closed_loop && !opts.scenario.empty() &&
        !workloads::is_closed_loop_scenario(opts.scenario))
        throw std::invalid_argument(
            "run_capture: scenario '" + opts.scenario +
            "' is open-loop and cannot be driven with closed_loop");
    std::unique_ptr<workloads::ScheduleStream> schedule;
    if (!closed) schedule = make_capture_schedule(opts);
    if (opts.stream && opts.out_dir.empty())
        throw std::invalid_argument("run_capture: stream mode needs out_dir");

    gfs::GfsConfig cfg;
    cfg.n_chunkservers = std::max<std::size_t>(1, opts.n_servers);
    if (opts.replication != 0) cfg.replication = opts.replication;
    cfg.span_sample_every = std::max<std::uint64_t>(1, opts.span_sample_every);
    cfg.seed = opts.seed;
    cfg.collect_latencies = opts.collect_latencies;
    if (opts.fault_rate > 0.0) {
        cfg.faults.enabled = true;
        cfg.faults.mtbf = 1.0 / opts.fault_rate;
        cfg.faults.mttr = opts.mttr;
        // horizon 0: faults follow the run until the cluster drains, so
        // requests still in flight after the last arrival keep seeing
        // crashes (the old `last arrival + 1s` horizon left the drain
        // artificially fault-free).
        cfg.faults.horizon = 0.0;
    }
    if (!opts.admission.empty()) {
        if (opts.admission != "queue" && opts.admission != "reject")
            throw std::invalid_argument(
                "run_capture: admission policy must be 'queue' or 'reject', got '" +
                opts.admission + "'");
        cfg.admission.enabled = true;
        cfg.admission.queue = opts.admission == "queue";
        if (opts.admission_tickets > 0) {
            // Pinned ticket count: the offline-optimal sweep measures a
            // fixed concurrency limit, so the probe loop stays off.
            cfg.admission.initial_tickets = opts.admission_tickets;
            cfg.admission.min_tickets = opts.admission_tickets;
            cfg.admission.max_tickets = opts.admission_tickets;
            cfg.admission.probe_interval = 0.0;
        }
    }

    std::unique_ptr<trace::StreamingSink> streaming;
    if (opts.stream) {
        trace::StreamingSink::Options so;
        so.dir = opts.out_dir;
        so.chunk_records = std::max<std::size_t>(1, opts.chunk_records);
        streaming = std::make_unique<trace::StreamingSink>(
            so, 1 + cfg.n_chunkservers);
    }

    std::optional<workloads::ClosedLoopParams> clp;
    if (closed) clp = closed_loop_params(opts);

    gfs::Cluster cluster(cfg, closed ? clp->clients : 1, streaming.get());
    if (streaming) {
        sim::Engine& eng = cluster.engine();
        streaming->set_clock([&eng] { return eng.now(); });
    }
    std::optional<SchedulePump> pump;
    std::optional<ClosedLoopDriver> loop;
    if (closed) {
        loop.emplace(cluster, workloads::ClosedLoopPool(*clp));
        loop->start();
    } else {
        pump.emplace(cluster, std::move(schedule));
        pump->start();
    }
    cluster.run();

    CaptureResult res;
    res.duration = cluster.engine().now();
    res.completed = cluster.completed();
    res.failed = cluster.failed_requests();
    if (const auto* inj = cluster.fault_injector()) {
        res.crashes = inj->crashes();
        res.repairs = inj->repairs();
    }
    res.rejected = cluster.rejected_requests();
    if (auto* adm = cluster.admission(0)) res.converged_tickets = adm->best_tickets();
    if (!cluster.latencies().empty()) res.latency = stats::summarize(cluster.latencies());
    res.goodput = res.duration > 0.0 ? double(res.completed) / res.duration : 0.0;

    if (streaming) {
        streaming->finish();
        res.records = streaming->records_seen();
    } else {
        // Move the records out instead of copying: `traces = traces()`
        // briefly doubled peak memory at exactly the worst moment.
        res.traces = cluster.take_traces();
        res.records = res.traces.total_records();
        if (!opts.out_dir.empty())
            trace::write_traces(res.traces, opts.out_dir, opts.format);
    }

    metrics().runs.add();
    // Every request that ran through the capture counts, completed or
    // failed; failures additionally increment the failed counter. (The
    // old completed-only count made requests_total undercount under
    // fault injection.)
    metrics().requests.add(res.completed + res.failed);
    metrics().failed.add(res.failed);
    metrics().rejected.add(res.rejected);
    metrics().duration_ns.observe_seconds(res.duration);
    return res;
}

}  // namespace kooza::core
