#include "core/capture.hpp"

#include <algorithm>
#include <stdexcept>

#include "gfs/cluster.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace kooza::core {

namespace {

struct CaptureMetrics {
    obs::Counter& runs = obs::counter("core.capture.runs_total");
    obs::Counter& requests = obs::counter("core.capture.requests_total");
    obs::Counter& failed = obs::counter("core.capture.failed_requests_total");
    // Sim-clock capture span: deterministic, so it stays in golden exports.
    obs::Histogram& duration_ns =
        obs::histogram("core.capture.duration_ns", obs::Unit::kNanoseconds);
};

CaptureMetrics& metrics() {
    static CaptureMetrics m;
    return m;
}

}  // namespace

std::unique_ptr<workloads::Profile> make_profile(const std::string& name,
                                                 std::size_t count, double rate) {
    if (name == "micro")
        return std::make_unique<workloads::MicroProfile>(
            workloads::MicroProfile::Params{.count = count, .arrival_rate = rate});
    if (name == "oltp")
        return std::make_unique<workloads::OltpProfile>(
            workloads::OltpProfile::Params{.count = count, .base_rate = rate});
    if (name == "websearch")
        return std::make_unique<workloads::WebSearchProfile>(
            workloads::WebSearchProfile::Params{.count = count,
                                                .arrival_rate = rate});
    if (name == "streaming")
        return std::make_unique<workloads::StreamingProfile>(
            workloads::StreamingProfile::Params{.sessions = count / 20 + 1,
                                                .session_rate = rate / 10.0});
    if (name == "logappend")
        return std::make_unique<workloads::LogAppendProfile>(
            workloads::LogAppendProfile::Params{.count = count,
                                                .arrival_rate = rate});
    return nullptr;
}

CaptureResult run_capture(const CaptureOptions& opts) {
    auto profile = make_profile(opts.profile, opts.count, opts.rate);
    if (!profile)
        throw std::invalid_argument("run_capture: unknown profile: " + opts.profile);

    gfs::GfsConfig cfg;
    cfg.n_chunkservers = std::max<std::size_t>(1, opts.n_servers);
    if (opts.replication != 0) cfg.replication = opts.replication;
    cfg.span_sample_every = std::max<std::uint64_t>(1, opts.span_sample_every);
    cfg.seed = opts.seed;

    // Generate the schedule first so the fault horizon can cover it.
    sim::Rng rng(opts.seed);
    const auto schedule = profile->generate(rng);
    if (opts.fault_rate > 0.0) {
        cfg.faults.enabled = true;
        cfg.faults.mtbf = 1.0 / opts.fault_rate;
        cfg.faults.mttr = opts.mttr;
        double last = 0.0;
        for (const auto& r : schedule.requests) last = std::max(last, r.time);
        cfg.faults.horizon = last + 1.0;
    }

    gfs::Cluster cluster(cfg);
    schedule.install(cluster);
    cluster.run();

    CaptureResult res;
    res.traces = cluster.traces();
    res.duration = cluster.engine().now();
    res.completed = cluster.completed();
    res.failed = cluster.failed_requests();
    if (const auto* inj = cluster.fault_injector()) {
        res.crashes = inj->crashes();
        res.repairs = inj->repairs();
    }

    if (!opts.out_dir.empty())
        trace::write_traces(res.traces, opts.out_dir, opts.format);

    metrics().runs.add();
    metrics().requests.add(res.completed);
    metrics().failed.add(res.failed);
    metrics().duration_ns.observe_seconds(res.duration);
    return res;
}

}  // namespace kooza::core
