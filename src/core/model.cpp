#include "core/model.hpp"

#include <sstream>
#include <stdexcept>

namespace kooza::core {

ServerModel::ServerModel(std::string workload_name,
                         std::unique_ptr<queueing::ArrivalProcess> arrivals,
                         double read_fraction, std::optional<TypeModel> read_model,
                         std::optional<TypeModel> write_model,
                         std::unique_ptr<markov::Discretizer> lbn_states,
                         std::unique_ptr<markov::Discretizer> bank_states,
                         std::unique_ptr<markov::Discretizer> util_states,
                         double cpu_verify_fraction)
    : name_(std::move(workload_name)),
      arrivals_(std::move(arrivals)),
      read_fraction_(read_fraction),
      read_(std::move(read_model)),
      write_(std::move(write_model)),
      lbn_states_(std::move(lbn_states)),
      bank_states_(std::move(bank_states)),
      util_states_(std::move(util_states)),
      cpu_verify_fraction_(cpu_verify_fraction) {
    if (!arrivals_) throw std::invalid_argument("ServerModel: missing arrival process");
    if (!read_ && !write_)
        throw std::invalid_argument("ServerModel: need at least one request type");
    if (!(read_fraction_ >= 0.0 && read_fraction_ <= 1.0))
        throw std::invalid_argument("ServerModel: read_fraction outside [0,1]");
    if (!lbn_states_ || !bank_states_ || !util_states_)
        throw std::invalid_argument("ServerModel: missing discretizers");
    if (!(cpu_verify_fraction_ > 0.0 && cpu_verify_fraction_ < 1.0))
        throw std::invalid_argument("ServerModel: cpu_verify_fraction outside (0,1)");
}

const TypeModel& ServerModel::reads() const {
    if (!read_) throw std::logic_error("ServerModel: no read model trained");
    return *read_;
}

const TypeModel& ServerModel::writes() const {
    if (!write_) throw std::logic_error("ServerModel: no write model trained");
    return *write_;
}

std::size_t ServerModel::parameter_count() const {
    std::size_t n = 2;  // arrival process + read fraction
    if (read_) n += read_->parameter_count();
    if (write_) n += write_->parameter_count();
    return n;
}

std::string ServerModel::describe() const {
    std::ostringstream os;
    os << "ServerModel[" << name_ << "]\n"
       << "  arrivals: " << arrivals_->describe() << "\n"
       << "  read fraction: " << read_fraction_ << "\n"
       << "  states: storage=" << lbn_states_->describe()
       << ", memory=" << bank_states_->describe()
       << ", cpu=" << util_states_->describe() << "\n"
       << "  cpu verify fraction: " << cpu_verify_fraction_ << "\n"
       << "  parameters: ~" << parameter_count() << "\n";
    if (read_) os << "  read structure:\n" << read_->structure.describe();
    if (write_) os << "  write structure:\n" << write_->structure.describe();
    return os.str();
}

}  // namespace kooza::core
