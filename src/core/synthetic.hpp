// Synthetic requests — the output of every model's generator and the
// input of the replayer. One SyntheticRequest carries the per-subsystem
// features the paper's Table 2 compares, plus the phase order (structure)
// that only structure-aware models fill in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/features.hpp"
#include "trace/records.hpp"

namespace kooza::core {

struct SyntheticRequest {
    double time = 0.0;  ///< absolute arrival time
    trace::IoType type = trace::IoType::kRead;

    // Subsystem features (Table 2 columns).
    std::uint64_t network_bytes = 0;
    double cpu_busy_seconds = 0.0;  ///< replayed as CPU work
    std::uint64_t memory_bytes = 0;
    trace::IoType memory_type = trace::IoType::kRead;
    std::uint32_t bank = 0;
    std::uint64_t storage_bytes = 0;
    trace::IoType storage_type = trace::IoType::kRead;
    std::uint64_t lbn = 0;

    /// Phase order for structured replay (empty for models without time
    /// dependencies — the replayer then stresses subsystems in parallel).
    std::vector<std::string> phases;

    /// Which server executes the request in a multi-server replay
    /// (taken modulo the replayer's server count).
    std::uint32_t server = 0;
};

/// A generated workload plus provenance.
struct SyntheticWorkload {
    std::string model_name;
    std::vector<SyntheticRequest> requests;

    [[nodiscard]] bool empty() const noexcept { return requests.empty(); }
};

/// Project synthetic requests onto the same feature rows real traces
/// produce, so the validator compares like with like. (Latency is zero
/// until the workload has been replayed.)
[[nodiscard]] std::vector<trace::RequestFeatures> to_features(
    const SyntheticWorkload& w);

}  // namespace kooza::core
