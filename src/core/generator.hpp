// KOOZA generator: walks the trained sub-models to synthesize a request
// stream with per-subsystem features and per-request phase structure —
// the "synthetic request generated based on the model" of the paper's
// Table 2 validation.
#pragma once

#include <cstddef>

#include "core/model.hpp"
#include "core/synthetic.hpp"
#include "sim/rng.hpp"

namespace kooza::core {

class Generator {
public:
    explicit Generator(const ServerModel& model) : model_(model) {}

    /// Generate `count` requests starting at time `start`. Arrival times
    /// come from the network sub-model; request type from the learned
    /// read/write mix; features from the per-type annotated chains; phase
    /// order from the structure queue.
    [[nodiscard]] SyntheticWorkload generate(std::size_t count, sim::Rng& rng,
                                             double start = 0.0) const;

private:
    const ServerModel& model_;
};

}  // namespace kooza::core
