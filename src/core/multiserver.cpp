#include "core/multiserver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "par/pool.hpp"

namespace kooza::core {

ClusterModel ClusterModel::train(std::span<const trace::TraceSet> per_server,
                                 TrainerConfig cfg) {
    if (per_server.empty())
        throw std::invalid_argument("ClusterModel::train: no server traces");
    // Per-server fits are independent; run them across the pool and keep
    // the result of server i in slot i.
    std::vector<std::optional<ServerModel>> fitted(per_server.size());
    par::pool().parallel_for(per_server.size(), [&](std::size_t i) {
        TrainerConfig server_cfg = cfg;
        server_cfg.workload_name =
            cfg.workload_name + "/server" + std::to_string(i);
        try {
            fitted[i] = Trainer(server_cfg).train(per_server[i]);
        } catch (const std::invalid_argument& e) {
            throw std::invalid_argument(
                "ClusterModel::train: server " + std::to_string(i) + ": " + e.what());
        }
    });
    std::vector<ServerModel> servers;
    servers.reserve(fitted.size());
    for (auto& m : fitted) servers.push_back(std::move(*m));
    return ClusterModel(std::move(servers));
}

SyntheticWorkload ClusterModel::generate(double duration, sim::Rng& rng) const {
    if (!(duration > 0.0))
        throw std::invalid_argument("ClusterModel::generate: duration must be > 0");
    SyntheticWorkload out;
    out.model_name = "kooza-cluster(" + std::to_string(servers_.size()) + ")";
    // One draw from the caller's stream seeds every per-server shard (via
    // splitmix64), so instance streams are independent of each other and
    // of the thread schedule.
    const std::uint64_t base = rng.engine()();
    std::vector<std::vector<SyntheticRequest>> streams(servers_.size());
    par::pool().parallel_for(servers_.size(), [&](std::size_t s) {
        // Generate enough requests to cover the horizon, then trim.
        const double rate = std::max(servers_[s].arrivals().mean_rate(), 1e-9);
        const std::size_t budget =
            std::size_t(std::ceil(rate * duration * 1.3)) + 16;
        Generator gen(servers_[s]);
        sim::Rng server_rng(par::shard_seed(base, s));
        auto stream = gen.generate(budget, server_rng);
        for (auto& r : stream.requests) {
            if (r.time > duration) break;
            r.server = std::uint32_t(s);
            streams[s].push_back(std::move(r));
        }
    });
    for (auto& stream : streams)
        for (auto& r : stream) out.requests.push_back(std::move(r));
    // stable_sort: equal-time ties keep server-index order, so the merged
    // stream is a well-defined function of the seed alone.
    std::stable_sort(out.requests.begin(), out.requests.end(),
                     [](const SyntheticRequest& a, const SyntheticRequest& b) {
                         return a.time < b.time;
                     });
    if (out.requests.empty())
        throw std::runtime_error(
            "ClusterModel::generate: horizon too short for the learned rates");
    return out;
}

std::size_t ClusterModel::parameter_count() const {
    std::size_t n = 0;
    for (const auto& s : servers_) n += s.parameter_count();
    return n;
}

std::vector<double> ClusterModel::arrival_rates() const {
    std::vector<double> out;
    out.reserve(servers_.size());
    for (const auto& s : servers_) out.push_back(s.arrivals().mean_rate());
    return out;
}

std::string ClusterModel::describe() const {
    std::ostringstream os;
    os << "ClusterModel(" << servers_.size() << " server instances, ~"
       << parameter_count() << " params; rates:";
    for (double r : arrival_rates()) os << ' ' << r;
    os << "/s)";
    return os.str();
}

}  // namespace kooza::core
