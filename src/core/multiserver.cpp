#include "core/multiserver.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace kooza::core {

ClusterModel ClusterModel::train(std::span<const trace::TraceSet> per_server,
                                 TrainerConfig cfg) {
    if (per_server.empty())
        throw std::invalid_argument("ClusterModel::train: no server traces");
    std::vector<ServerModel> servers;
    servers.reserve(per_server.size());
    for (std::size_t i = 0; i < per_server.size(); ++i) {
        TrainerConfig server_cfg = cfg;
        server_cfg.workload_name =
            cfg.workload_name + "/server" + std::to_string(i);
        try {
            servers.push_back(Trainer(server_cfg).train(per_server[i]));
        } catch (const std::invalid_argument& e) {
            throw std::invalid_argument(
                "ClusterModel::train: server " + std::to_string(i) + ": " + e.what());
        }
    }
    return ClusterModel(std::move(servers));
}

SyntheticWorkload ClusterModel::generate(double duration, sim::Rng& rng) const {
    if (!(duration > 0.0))
        throw std::invalid_argument("ClusterModel::generate: duration must be > 0");
    SyntheticWorkload out;
    out.model_name = "kooza-cluster(" + std::to_string(servers_.size()) + ")";
    for (std::size_t s = 0; s < servers_.size(); ++s) {
        // Generate enough requests to cover the horizon, then trim.
        const double rate = std::max(servers_[s].arrivals().mean_rate(), 1e-9);
        const std::size_t budget =
            std::size_t(std::ceil(rate * duration * 1.3)) + 16;
        Generator gen(servers_[s]);
        auto stream = gen.generate(budget, rng);
        for (auto& r : stream.requests) {
            if (r.time > duration) break;
            r.server = std::uint32_t(s);
            out.requests.push_back(std::move(r));
        }
    }
    std::sort(out.requests.begin(), out.requests.end(),
              [](const SyntheticRequest& a, const SyntheticRequest& b) {
                  return a.time < b.time;
              });
    if (out.requests.empty())
        throw std::runtime_error(
            "ClusterModel::generate: horizon too short for the learned rates");
    return out;
}

std::size_t ClusterModel::parameter_count() const {
    std::size_t n = 0;
    for (const auto& s : servers_) n += s.parameter_count();
    return n;
}

std::vector<double> ClusterModel::arrival_rates() const {
    std::vector<double> out;
    out.reserve(servers_.size());
    for (const auto& s : servers_) out.push_back(s.arrivals().mean_rate());
    return out;
}

std::string ClusterModel::describe() const {
    std::ostringstream os;
    os << "ClusterModel(" << servers_.size() << " server instances, ~"
       << parameter_count() << " params; rates:";
    for (double r : arrival_rates()) os << ' ' << r;
    os << "/s)";
    return os.str();
}

}  // namespace kooza::core
