// kooza_model — the full KOOZA pipeline over trace dirs (CSV or
// kooza.trace/1 binary, auto-detected): train a model, print it,
// generate a synthetic workload, replay it on the device models, and
// validate features + latency against the original. Optionally writes
// the replayed traces back out (--out, in --format csv|bin).
//
// Usage:
//   kooza_model <trace-dir> [--baseline kooza|hmm] [--generate N] [--seed S]
//               [--lbn-ranges N] [--util-levels N] [--hmm-states N]
//               [--out DIR] [--format csv|bin] [--save MODEL-FILE]
//               [--threads N] [--metrics FILE]
//
// --baseline hmm swaps the KOOZA trainer for the Harrison-style HMM
// storage baseline (baselines::HmmModel); --hmm-states sets its hidden
// state count and is only valid there, just as --lbn-ranges /
// --util-levels / --save are only valid for the KOOZA model. HMM
// workloads replay in independent mode (the model carries no phase
// structure).
//
// --metrics FILE exports the pipeline's metrics registry (train/generate/
// replay counters and timers) after the run; ".csv" selects CSV,
// anything else canonical JSON.

#include <iostream>

#include "baselines/hmm.hpp"
#include "cli_util.hpp"
#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "core/validator.hpp"
#include "obs/export.hpp"
#include "par/pool.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"

int main(int argc, char** argv) {
    using namespace kooza;
    try {
        cli::Args args(argc, argv);
        if (args.positional().size() != 1) {
            std::cerr << "usage: kooza_model <trace-dir> [--baseline kooza|hmm] "
                         "[--generate N] [--seed S] "
                         "[--lbn-ranges N] [--util-levels N] [--hmm-states N] "
                         "[--out DIR] "
                         "[--format csv|bin] [--save MODEL-FILE] [--threads N] "
                         "[--metrics FILE]\n";
            return 2;
        }
        const auto fmt = trace::format_from_string(args.get("format", "csv"));
        if (!fmt) {
            std::cerr << "kooza_model: --format must be csv or bin\n";
            return 2;
        }
        const auto baseline = args.get("baseline", "kooza");
        if (baseline != "kooza" && baseline != "hmm") {
            std::cerr << "kooza_model: --baseline must be kooza or hmm\n";
            return 2;
        }
        // Per-model knobs are rejected, not ignored, on the other model —
        // a silently dropped flag reads as a tighter fit that never happened.
        if (baseline != "hmm" && args.has("hmm-states")) {
            std::cerr << "kooza_model: --hmm-states requires --baseline hmm\n";
            return 2;
        }
        if (baseline == "hmm") {
            for (const char* flag : {"lbn-ranges", "util-levels", "save"}) {
                if (args.has(flag)) {
                    std::cerr << "kooza_model: --" << flag
                              << " only applies to --baseline kooza\n";
                    return 2;
                }
            }
        }
        // 0 = auto (KOOZA_THREADS env, else hardware concurrency).
        par::set_threads(std::size_t(args.get_u64("threads", 0)));
        const auto ts = trace::read_traces(args.positional()[0]);
        if (ts.requests.empty()) {
            std::cerr << "no completed requests in " << args.positional()[0] << "\n";
            return 1;
        }

        const auto n = std::size_t(args.get_u64("generate", ts.requests.size()));
        sim::Rng rng(args.get_u64("seed", 42));
        core::SyntheticWorkload synthetic;
        auto replay_mode = core::ReplayMode::kStructured;
        core::ReplayConfig rc;

        if (baseline == "hmm") {
            baselines::HmmConfig hc;
            hc.n_states = std::size_t(args.get_u64("hmm-states", 4));
            const auto model = baselines::HmmModel::train(ts, hc);
            std::cout << model.describe() << "\n"
                      << "run: seed=" << args.get_u64("seed", 42)
                      << " threads=" << par::threads() << "\n";
            synthetic = model.generate(n, rng);
            replay_mode = core::ReplayMode::kIndependent;
            rc.cpu_verify_fraction = 0.4;
        } else {
            core::TrainerConfig tc;
            tc.workload_name = args.positional()[0];
            tc.lbn_ranges = std::size_t(args.get_u64("lbn-ranges", 4));
            tc.util_levels = std::size_t(args.get_u64("util-levels", 4));
            const auto model = core::Trainer(tc).train(ts);
            std::cout << model.describe() << "\n"
                      << "run: seed=" << args.get_u64("seed", 42)
                      << " threads=" << par::threads() << "\n";

            const auto save_path = args.get("save", "");
            if (!save_path.empty()) {
                core::save_model(model, std::filesystem::path(save_path));
                std::cout << "saved model to " << save_path
                          << " (load with kooza_generate)\n";
            }
            synthetic = core::Generator(model).generate(n, rng);
            rc.cpu_verify_fraction = model.cpu_verify_fraction();
        }

        core::Replayer replayer(rc);
        const auto replayed = replayer.replay(synthetic, replay_mode);

        const auto orig_features = trace::extract_features(ts);
        const auto synth_features = trace::extract_features(replayed.traces);
        auto report = core::compare_features(
            orig_features, synth_features,
            (baseline == "hmm" ? "HMM" : "KOOZA") +
                std::string(" synthetic vs original"));
        report.unknown_phases = replayed.unknown_phases;
        std::cout << "\n" << report.to_table() << "\n"
                  << "max feature variation: " << report.max_feature_variation()
                  << " %\nlatency variation:     " << report.latency_variation()
                  << " %\n";

        // Per-type breakdown: with a bimodal read/write mix the aggregate
        // means above also carry mix-sampling noise; the per-type rows are
        // the model-fidelity signal (the paper's Table 2 is per-request).
        auto by_type = [](const std::vector<trace::RequestFeatures>& fs,
                          trace::IoType t) {
            std::vector<trace::RequestFeatures> out;
            for (const auto& f : fs)
                if (f.storage_type == t) out.push_back(f);
            return out;
        };
        for (auto type : {trace::IoType::kRead, trace::IoType::kWrite}) {
            const auto o = by_type(orig_features, type);
            const auto s = by_type(synth_features, type);
            if (o.empty() || s.empty()) continue;
            std::cout << "\n"
                      << core::compare_features(
                             o, s,
                             std::string("per-type: ") + trace::to_string(type))
                             .to_table();
        }

        const auto out = args.get("out", "");
        if (!out.empty()) {
            trace::write_traces(replayed.traces, out, *fmt);
            std::cout << "wrote replayed synthetic traces to " << out << " ("
                      << trace::to_string(*fmt) << ")\n";
        }

        const auto metrics_path = args.get("metrics", "");
        if (!metrics_path.empty()) {
            // Wall timers (train/generate durations) stay in: this export
            // is for inspecting a run, not for golden comparisons.
            obs::write_metrics(obs::Registry::global().snapshot(), metrics_path);
            std::cout << "wrote metrics to " << metrics_path << "\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "kooza_model: " << e.what() << "\n";
        return 1;
    }
}
