// Minimal flag parsing shared by the kooza_* command-line tools.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace kooza::cli {

/// Parses "positional... [--flag value]... [--switch]..." command lines.
/// A flag followed by another "--" token (or the end of the line) is a
/// boolean switch; query those with has(). Names in `switches` never
/// consume a value, so "--closed-loop <output-dir>" keeps the directory
/// as a positional instead of swallowing it as the switch's value.
class Args {
public:
    Args(int argc, char** argv, std::set<std::string> switches = {}) {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string name = a.substr(2);
                if (switches.count(name) != 0 || i + 1 >= argc ||
                    std::string(argv[i + 1]).rfind("--", 0) == 0)
                    flags_[name] = "";
                else
                    flags_[name] = argv[++i];
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }

    /// True if the flag appeared at all (with or without a value).
    [[nodiscard]] bool has(const std::string& name) const {
        return flags_.count(name) != 0;
    }

    [[nodiscard]] std::string get(const std::string& name,
                                  const std::string& fallback) const {
        auto it = flags_.find(name);
        return it == flags_.end() ? fallback : it->second;
    }

    /// Unsigned decimal only, full field consumed. Bare std::stoull
    /// accepted trailing junk ("10x" -> 10) and wrapped negatives into
    /// huge unsigned values ("-1" -> 2^64-1); a mistyped flag must fail
    /// loudly, naming itself, not silently truncate.
    [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                        std::uint64_t fallback) const {
        auto it = flags_.find(name);
        if (it == flags_.end()) return fallback;
        const std::string& s = it->second;
        if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
            bad_value(name, s, "an unsigned integer");
        try {
            return std::stoull(s);
        } catch (const std::out_of_range&) {
            bad_value(name, s, "an unsigned integer (out of range)");
        }
    }

    /// Floating-point, full field consumed ("1.5GB" and "1,000" no longer
    /// parse as 1.5 / 1).
    [[nodiscard]] double get_double(const std::string& name, double fallback) const {
        auto it = flags_.find(name);
        if (it == flags_.end()) return fallback;
        const std::string& s = it->second;
        std::size_t pos = 0;
        double v = 0.0;
        try {
            v = std::stod(s, &pos);
        } catch (const std::exception&) {
            bad_value(name, s, "a number");
        }
        if (pos != s.size()) bad_value(name, s, "a number");
        return v;
    }

private:
    [[noreturn]] static void bad_value(const std::string& name,
                                       const std::string& value,
                                       const char* expected) {
        throw std::invalid_argument("--" + name + ": expected " + expected +
                                    ", got '" + value + "'");
    }

    std::vector<std::string> positional_;
    std::map<std::string, std::string> flags_;
};

}  // namespace kooza::cli
