// Minimal flag parsing shared by the kooza_* command-line tools.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace kooza::cli {

/// Parses "positional... [--flag value]... [--switch]..." command lines.
/// A flag followed by another "--" token (or the end of the line) is a
/// boolean switch; query those with has().
class Args {
public:
    Args(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)
                    flags_[a.substr(2)] = "";
                else
                    flags_[a.substr(2)] = argv[++i];
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }

    /// True if the flag appeared at all (with or without a value).
    [[nodiscard]] bool has(const std::string& name) const {
        return flags_.count(name) != 0;
    }

    [[nodiscard]] std::string get(const std::string& name,
                                  const std::string& fallback) const {
        auto it = flags_.find(name);
        return it == flags_.end() ? fallback : it->second;
    }

    [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                        std::uint64_t fallback) const {
        auto it = flags_.find(name);
        return it == flags_.end() ? fallback : std::stoull(it->second);
    }

    [[nodiscard]] double get_double(const std::string& name, double fallback) const {
        auto it = flags_.find(name);
        return it == flags_.end() ? fallback : std::stod(it->second);
    }

private:
    std::vector<std::string> positional_;
    std::map<std::string, std::string> flags_;
};

}  // namespace kooza::cli
