// kooza_inspect — load a trace directory (CSV or kooza.trace/1 binary,
// auto-detected) and print its inventory, per-request feature summary and
// the full characterization report (burstiness, self-similarity,
// stationarity, distribution families, PCA dimensionality).
//
// Usage: kooza_inspect <trace-dir> [--window SECONDS] [--metrics FILE]
//        kooza_inspect <trace-dir> --convert OUT-DIR [--format csv|bin]
//        kooza_inspect --metrics FILE
//
// --convert re-writes the directory's traces into OUT-DIR in --format
// (default csv — the interop path back from a binary capture to the
// human-readable layout) and skips the characterization report.
//
// --metrics FILE loads a metrics export (JSON or CSV, as written by
// kooza_capture/kooza_model --metrics) and prints a human-readable
// summary. With no trace directory it summarizes just the metrics file.

#include <iostream>

#include "cli_util.hpp"
#include "core/characterize.hpp"
#include "obs/export.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"

int main(int argc, char** argv) {
    using namespace kooza;
    try {
        cli::Args args(argc, argv);
        const auto metrics_path = args.get("metrics", "");
        const auto convert_dir = args.get("convert", "");
        if (args.positional().size() != 1 &&
            !(args.positional().empty() && !metrics_path.empty())) {
            std::cerr << "usage: kooza_inspect <trace-dir> [--window SECONDS] "
                         "[--metrics FILE]\n"
                         "       kooza_inspect <trace-dir> --convert OUT-DIR "
                         "[--format csv|bin]\n"
                         "       kooza_inspect --metrics FILE\n";
            return 2;
        }
        if (!args.positional().empty() && !convert_dir.empty()) {
            const auto fmt = trace::format_from_string(args.get("format", "csv"));
            if (!fmt) {
                std::cerr << "kooza_inspect: --format must be csv or bin\n";
                return 2;
            }
            const auto& in_dir = args.positional()[0];
            const auto in_fmt = trace::detect_format(in_dir);
            const auto ts = trace::read_traces(in_dir, in_fmt);
            trace::write_traces(ts, convert_dir, *fmt);
            std::cout << "inventory: " << ts.summary() << "\n"
                      << "converted " << in_dir << " ("
                      << trace::to_string(in_fmt) << ") -> " << convert_dir
                      << " (" << trace::to_string(*fmt) << ")\n";
            return 0;
        }
        if (!args.positional().empty()) {
            const auto ts = trace::read_traces(args.positional()[0]);
            if (ts.empty()) {
                std::cerr << "no trace records found in " << args.positional()[0]
                          << "\n";
                return 1;
            }
            std::cout << "inventory: " << ts.summary() << "\n\n";
            const auto features = trace::extract_features(ts);
            std::cout << "first requests:\n";
            for (std::size_t i = 0; i < std::min<std::size_t>(5, features.size());
                 ++i)
                std::cout << "  " << features[i].to_string() << "\n";
            std::cout << "\ncharacterization:\n"
                      << core::characterize(ts, args.get_double("window", 0.5))
                             .to_string();
            try {
                std::cout << "\n" << core::correlation_report(ts).to_string();
            } catch (const std::invalid_argument&) {
                // Too few requests for a correlation study; skip quietly.
            }
        }
        if (!metrics_path.empty()) {
            const auto snap = obs::load_metrics(metrics_path);
            if (!args.positional().empty()) std::cout << "\n";
            std::cout << "metrics (" << metrics_path << "):\n"
                      << obs::summarize(snap);
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "kooza_inspect: " << e.what() << "\n";
        return 1;
    }
}
