// kooza_capture — run a workload on the GFS simulator and write the
// captured traces (per-subsystem records + spans) in the format
// kooza_inspect and kooza_model consume: human-readable CSV (default) or
// the kooza.trace/1 binary columnar fast path (--format bin).
//
// Usage:
//   kooza_capture <profile> <output-dir> [options]
//   kooza_capture --scenario NAME <output-dir> [options]
//   kooza_capture --model MODEL-FILE <output-dir> [options]
//   kooza_capture --replay TRACE-DIR <output-dir> [options]
//   kooza_capture --closed-loop <output-dir> [options]
//   kooza_capture --list-scenarios
// Options: [--count N] [--rate R] [--seed S] [--period S]
//          [--servers N] [--replication N] [--sample-every N]
//          [--threads N] [--format csv|bin] [--faults R] [--mttr S]
//          [--metrics FILE] [--stream] [--chunk-records N]
//          [--read-size B] [--write-size B] [--no-latencies]
//          [--clients N] [--outstanding N] [--think-time S]
//          [--admission queue|reject] [--admission-tickets N]
// Profiles: micro | oltp | websearch | streaming | logappend
//
// --scenario runs a scenario-library workload (diurnal, flashcrowd,
// tiered, checkpoint — see --list-scenarios); --period sets its envelope
// period. --model replays a trained model file (kooza_model output)
// through the capture pipeline; --replay re-issues the request log of an
// earlier capture. The three are mutually exclusive and replace the
// profile positional.
//
// --stream flushes records to <output-dir> (kooza.trace/1 binary, forced)
// while the simulation runs, in chunks of --chunk-records rows per
// stream: peak memory stays flat no matter how long the capture is, and
// the files are byte-identical to a non-streamed --format bin capture of
// the same options.
//
// --faults R enables the deterministic fault injector with a per-server
// failure rate of R crashes/second (MTBF = 1/R); --mttr sets the mean
// repair time. Failure/retry records land in failures.csv.
//
// --closed-loop drives the cluster with a pool of --clients clients each
// keeping --outstanding requests in flight, drawing exponential think
// time with mean --think-time between a completion and the next issue
// (closed-loop scenarios from --list-scenarios select a tuned pool).
// --admission enables ticket-based admission control at each chunkserver
// ("queue" parks overflow in a bounded FIFO, "reject" bounces it);
// --admission-tickets pins the ticket count instead of probing, which is
// how bench_closedloop sweeps for the offline-optimal concurrency.
//
// --metrics FILE exports the run's metrics registry after the capture.
// ".csv" writes CSV; any other extension writes canonical JSON plus a
// sibling ".csv". Wall-clock metrics are excluded, so a fixed seed
// produces byte-identical JSON at any --threads value.

#include <iostream>

#include "cli_util.hpp"
#include "core/capture.hpp"
#include "obs/export.hpp"
#include "par/pool.hpp"
#include "trace/io.hpp"
#include "workloads/scenarios.hpp"

int main(int argc, char** argv) {
    using namespace kooza;
    try {
        cli::Args args(argc, argv,
                       {"closed-loop", "stream", "no-latencies", "list-scenarios"});
        if (args.has("list-scenarios")) {
            for (const auto& name : workloads::scenario_names())
                std::cout << name << "  " << workloads::describe_scenario(name)
                          << "\n";
            for (const auto& name : workloads::closed_loop_scenario_names())
                std::cout << name << "  "
                          << workloads::describe_closed_loop_scenario(name) << "\n";
            return 0;
        }
        const std::string scenario = args.get("scenario", "");
        const std::string model_file = args.get("model", "");
        const std::string replay_dir = args.get("replay", "");
        const bool closed_loop = args.has("closed-loop");
        const bool has_source = !scenario.empty() || !model_file.empty() ||
                                !replay_dir.empty() || closed_loop;
        // With an explicit workload source the profile positional drops out.
        const std::size_t want_positional = has_source ? 1 : 2;
        if (args.positional().size() != want_positional) {
            std::cerr << "usage: kooza_capture "
                         "<micro|oltp|websearch|streaming|logappend> "
                         "<output-dir> [--count N] [--rate R] [--seed S] "
                         "[--servers N] [--replication N] [--sample-every N] "
                         "[--threads N] [--format csv|bin] [--faults R] "
                         "[--mttr S] [--metrics FILE] [--stream] "
                         "[--chunk-records N] [--read-size B] [--write-size B] "
                         "[--no-latencies]\n"
                         "   or: kooza_capture --scenario NAME <output-dir> "
                         "[--period S] [options]\n"
                         "   or: kooza_capture --model MODEL-FILE <output-dir> "
                         "[options]\n"
                         "   or: kooza_capture --replay TRACE-DIR <output-dir> "
                         "[options]\n"
                         "   or: kooza_capture --closed-loop <output-dir> "
                         "[--clients N] [--outstanding N] [--think-time S] "
                         "[--admission queue|reject] [--admission-tickets N] "
                         "[options]\n"
                         "   or: kooza_capture --list-scenarios\n";
            return 2;
        }
        const auto& out_dir = args.positional()[has_source ? 0 : 1];
        const auto fmt = trace::format_from_string(args.get("format", "csv"));
        if (!fmt) {
            std::cerr << "kooza_capture: --format must be csv or bin\n";
            return 2;
        }
        core::CaptureOptions opts;
        if (has_source) {
            opts.scenario = scenario;
            opts.model_file = model_file;
            opts.replay_dir = replay_dir;
        } else {
            opts.profile = args.positional()[0];
        }
        opts.count = std::size_t(args.get_u64("count", 500));
        opts.rate = args.get_double("rate", 20.0);
        opts.period = args.get_double("period", 60.0);
        opts.seed = args.get_u64("seed", 42);
        opts.n_servers = std::size_t(args.get_u64("servers", 1));
        opts.replication = std::size_t(args.get_u64("replication", 0));
        opts.span_sample_every = args.get_u64("sample-every", 1);
        opts.fault_rate = args.get_double("faults", 0.0);
        opts.mttr = args.get_double("mttr", 5.0);
        opts.out_dir = out_dir;
        opts.format = *fmt;
        opts.stream = args.has("stream");
        opts.chunk_records =
            std::size_t(args.get_u64("chunk-records", std::uint64_t(1) << 16));
        opts.read_size = args.get_u64("read-size", 0);
        opts.write_size = args.get_u64("write-size", 0);
        opts.collect_latencies = !args.has("no-latencies");
        opts.closed_loop = closed_loop;
        opts.clients = std::size_t(args.get_u64("clients", 8));
        opts.outstanding = std::size_t(args.get_u64("outstanding", 4));
        opts.think_time = args.get_double("think-time", 0.01);
        opts.admission = args.get("admission", "");
        opts.admission_tickets =
            std::uint32_t(args.get_u64("admission-tickets", 0));
        if (opts.stream) opts.format = trace::Format::kBinary;
        // 0 = auto (KOOZA_THREADS env, else hardware concurrency).
        par::set_threads(std::size_t(args.get_u64("threads", 0)));

        const auto res = core::run_capture(opts);
        if (opts.stream)
            std::cout << "captured " << res.records << " records (streamed)\n";
        else
            std::cout << "captured " << res.traces.summary() << "\n";
        if (opts.fault_rate > 0.0)
            std::cout << "faults: " << res.crashes << " crashes, " << res.repairs
                      << " re-replications, " << res.failed
                      << " failed requests\n";
        const bool closed_run =
            closed_loop || workloads::is_closed_loop_scenario(scenario);
        if (closed_run || !opts.admission.empty()) {
            std::cout << "closed-loop: " << res.completed << " completed, "
                      << res.rejected << " rejected, goodput=" << res.goodput
                      << " req/s";
            if (res.latency.count > 0)
                std::cout << ", latency p50=" << res.latency.median * 1e3
                          << "ms p95=" << res.latency.p95 * 1e3
                          << "ms p99=" << res.latency.p99 * 1e3 << "ms";
            if (!opts.admission.empty())
                std::cout << ", tickets=" << res.converged_tickets;
            std::cout << "\n";
        }
        std::cout << "run: seed=" << opts.seed << " threads=" << par::threads()
                  << "\n"
                  << "wrote " << trace::to_string(opts.format) << " traces to "
                  << out_dir << "\n";

        const auto metrics_path = args.get("metrics", "");
        if (!metrics_path.empty()) {
            const auto snap = obs::Registry::global().snapshot();
            // No wall-clock metrics: the export must be reproducible
            // across machines and thread counts.
            const obs::ExportOptions eo{.include_wall = false};
            std::filesystem::path p(metrics_path);
            obs::write_metrics(snap, p, eo);
            if (p.extension() != ".csv")
                obs::write_metrics(
                    snap, std::filesystem::path(p).replace_extension(".csv"), eo);
            std::cout << "wrote metrics to " << metrics_path << "\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "kooza_capture: " << e.what() << "\n";
        return 1;
    }
}
