// kooza_capture — run a workload profile on the GFS simulator and write
// the captured traces (per-subsystem records + spans) as CSV, the format
// kooza_inspect and kooza_model consume.
//
// Usage:
//   kooza_capture <profile> <output-dir> [--count N] [--rate R]
//                 [--seed S] [--servers N] [--replication N]
//                 [--sample-every N] [--threads N]
//                 [--faults R] [--mttr S]
// Profiles: micro | oltp | websearch | streaming
//
// --faults R enables the deterministic fault injector with a per-server
// failure rate of R crashes/second (MTBF = 1/R); --mttr sets the mean
// repair time. Failure/retry records land in failures.csv.

#include <algorithm>
#include <iostream>
#include <memory>

#include "cli_util.hpp"
#include "gfs/cluster.hpp"
#include "par/pool.hpp"
#include "trace/csv.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;

std::unique_ptr<workloads::Profile> make_profile(const std::string& name,
                                                 std::size_t count, double rate) {
    if (name == "micro")
        return std::make_unique<workloads::MicroProfile>(
            workloads::MicroProfile::Params{.count = count, .arrival_rate = rate});
    if (name == "oltp")
        return std::make_unique<workloads::OltpProfile>(
            workloads::OltpProfile::Params{.count = count, .base_rate = rate});
    if (name == "websearch")
        return std::make_unique<workloads::WebSearchProfile>(
            workloads::WebSearchProfile::Params{.count = count,
                                                .arrival_rate = rate});
    if (name == "streaming")
        return std::make_unique<workloads::StreamingProfile>(
            workloads::StreamingProfile::Params{.sessions = count / 20 + 1,
                                                .session_rate = rate / 10.0});
    return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        cli::Args args(argc, argv);
        if (args.positional().size() != 2) {
            std::cerr << "usage: kooza_capture <micro|oltp|websearch|streaming> "
                         "<output-dir> [--count N] [--rate R] [--seed S] "
                         "[--servers N] [--replication N] [--sample-every N] "
                         "[--threads N] [--faults R] [--mttr S]\n";
            return 2;
        }
        const auto& profile_name = args.positional()[0];
        const auto& out_dir = args.positional()[1];
        const auto count = std::size_t(args.get_u64("count", 500));
        const double rate = args.get_double("rate", 20.0);
        const auto seed = args.get_u64("seed", 42);
        const double fault_rate = args.get_double("faults", 0.0);
        const double mttr = args.get_double("mttr", 5.0);
        // 0 = auto (KOOZA_THREADS env, else hardware concurrency).
        par::set_threads(std::size_t(args.get_u64("threads", 0)));

        auto profile = make_profile(profile_name, count, rate);
        if (!profile) {
            std::cerr << "unknown profile: " << profile_name << "\n";
            return 2;
        }

        gfs::GfsConfig cfg;
        cfg.n_chunkservers = std::size_t(args.get_u64("servers", 1));
        cfg.replication = std::size_t(args.get_u64("replication", cfg.replication));
        cfg.span_sample_every = args.get_u64("sample-every", 1);
        cfg.seed = seed;

        // Generate the schedule first so the fault horizon can cover it.
        sim::Rng rng(seed);
        const auto schedule = profile->generate(rng);
        if (fault_rate > 0.0) {
            cfg.faults.enabled = true;
            cfg.faults.mtbf = 1.0 / fault_rate;
            cfg.faults.mttr = mttr;
            double last = 0.0;
            for (const auto& r : schedule.requests) last = std::max(last, r.time);
            cfg.faults.horizon = last + 1.0;
        }

        gfs::Cluster cluster(cfg);
        schedule.install(cluster);
        cluster.run();
        const auto ts = cluster.traces();
        trace::write_csv(ts, out_dir);
        std::cout << "captured " << ts.summary() << "\n";
        if (const auto* inj = cluster.fault_injector())
            std::cout << "faults: " << inj->crashes() << " crashes, "
                      << inj->repairs() << " re-replications, "
                      << cluster.failed_requests() << " failed requests\n";
        std::cout << "run: seed=" << seed << " threads=" << par::threads() << "\n"
                  << "wrote CSV traces to " << out_dir << "\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "kooza_capture: " << e.what() << "\n";
        return 1;
    }
}
