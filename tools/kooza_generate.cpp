// kooza_generate — load a saved KOOZA model (from kooza_model --save),
// generate a synthetic workload, replay it on the device models and write
// the resulting traces (--out, in --format csv|bin). This is the
// deployment half of the paper's methodology: the model file stands in
// for the application.
//
// Usage:
//   kooza_generate <model-file> [--count N] [--seed S] [--servers N]
//                  [--out DIR] [--format csv|bin]

#include <iostream>

#include "cli_util.hpp"
#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/serialize.hpp"
#include "stats/descriptive.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"

int main(int argc, char** argv) {
    using namespace kooza;
    try {
        cli::Args args(argc, argv);
        if (args.positional().size() != 1) {
            std::cerr << "usage: kooza_generate <model-file> [--count N] [--seed S] "
                         "[--servers N] [--out DIR] [--format csv|bin]\n";
            return 2;
        }
        const auto fmt = trace::format_from_string(args.get("format", "csv"));
        if (!fmt) {
            std::cerr << "kooza_generate: --format must be csv or bin\n";
            return 2;
        }
        const auto model = core::load_model(
            std::filesystem::path(args.positional()[0]));
        std::cout << "loaded " << model.describe() << "\n";

        const auto count = std::size_t(args.get_u64("count", 500));
        sim::Rng rng(args.get_u64("seed", 42));
        const auto workload = core::Generator(model).generate(count, rng);

        core::ReplayConfig rc;
        rc.n_servers = std::size_t(args.get_u64("servers", 1));
        rc.cpu_verify_fraction = model.cpu_verify_fraction();
        core::Replayer replayer(rc);
        const auto res = replayer.replay(workload);

        const auto features = trace::extract_features(res.traces);
        std::cout << "generated " << workload.requests.size()
                  << " requests, replayed on " << rc.n_servers << " server(s)\n"
                  << "mean latency "
                  << stats::mean(trace::column_latency(features)) * 1e3 << " ms, p99 "
                  << stats::quantile(trace::column_latency(features), 0.99) * 1e3
                  << " ms\n";
        if (res.network_drops > 0)
            std::cout << "network drops: " << res.network_drops << "\n";
        if (res.unknown_phases > 0)
            std::cout << "WARNING: replay skipped " << res.unknown_phases
                      << " unknown phase(s); results understate request cost "
                         "(core.replayer.unknown_phases_total)\n";

        const auto out = args.get("out", "");
        if (!out.empty()) {
            trace::write_traces(res.traces, out, *fmt);
            std::cout << "wrote synthetic traces to " << out << " ("
                      << trace::to_string(*fmt) << ")\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "kooza_generate: " << e.what() << "\n";
        return 1;
    }
}
