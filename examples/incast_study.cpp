// Incast study (paper Section 4): "given a unified address space in the
// DC, and since information on job/task ids is recorded the model can
// replicate effects like the TCP/IP incast problem".
//
// A client issues striped reads across N chunkservers; all N responses
// converge on the client's switch port. Past the port's buffer capacity,
// frames drop, TCP-like timeouts fire, and goodput collapses. The study
// runs the sweep twice — on the original GFS simulator and as a
// multi-server KOOZA replay — and prints goodput side by side.
//
// Usage: incast_study [max_fan_in]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/replayer.hpp"
#include "gfs/cluster.hpp"

namespace {

using namespace kooza;
using trace::IoType;

constexpr std::uint64_t kStripe = 256ull << 10;

double simulate_gfs(std::size_t fan_in, std::uint64_t& drops) {
    gfs::GfsConfig cfg;
    cfg.n_chunkservers = fan_in;
    cfg.chunk_size = kStripe;
    cfg.net.buffer_frames = 16;
    cfg.net.retry_timeout = 0.05;
    gfs::Cluster cluster(cfg);
    cluster.create_file("wide", kStripe * fan_in);
    cluster.submit({0.0, "wide", 0, kStripe * fan_in, IoType::kRead, 0});
    cluster.run();
    drops = 0;  // cluster-side drops are inside the client port; count via latency
    return cluster.latencies().at(0);
}

double replay_kooza(std::size_t fan_in, std::uint64_t& drops) {
    core::SyntheticWorkload w;
    w.model_name = "incast";
    for (std::size_t i = 0; i < fan_in; ++i) {
        core::SyntheticRequest r;
        r.time = 0.0;
        r.type = IoType::kRead;
        r.network_bytes = kStripe;
        r.storage_bytes = kStripe;
        r.memory_bytes = kStripe >> 2;
        r.cpu_busy_seconds = 1e-4;
        r.lbn = i * 4096;
        r.phases = {"disk.io", "net.tx"};
        r.server = std::uint32_t(i);
        w.requests.push_back(r);
    }
    core::ReplayConfig rc;
    rc.n_servers = fan_in;
    rc.net.buffer_frames = 16;
    rc.net.retry_timeout = 0.05;
    core::Replayer rep(rc);
    const auto res = rep.replay(w);
    drops = res.network_drops;
    double worst = 0.0;
    for (double l : res.latencies) worst = std::max(worst, l);
    return worst;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t max_fan =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    std::cout << "TCP-incast study: striped reads, " << kStripe / 1024
              << " KB per server, 16-frame client buffer\n\n";
    std::cout << std::left << std::setw(8) << "fan-in" << std::setw(16)
              << "sim latency" << std::setw(14) << "sim goodput" << std::setw(16)
              << "replay latency" << std::setw(14) << "replay drops" << "\n"
              << std::string(68, '-') << "\n";
    for (std::size_t fan = 2; fan <= max_fan; fan *= 2) {
        std::uint64_t sim_drops = 0, rep_drops = 0;
        const double sim_lat = simulate_gfs(fan, sim_drops);
        const double rep_lat = replay_kooza(fan, rep_drops);
        const double goodput_mbps =
            double(kStripe * fan) / sim_lat / 1e6;  // payload MB/s
        std::cout << std::left << std::setw(8) << fan << std::setw(16)
                  << (std::to_string(sim_lat * 1e3) + " ms").substr(0, 12)
                  << std::setw(14)
                  << (std::to_string(goodput_mbps) + " MB/s").substr(0, 12)
                  << std::setw(16)
                  << (std::to_string(rep_lat * 1e3) + " ms").substr(0, 12)
                  << std::setw(14) << rep_drops << "\n";
    }
    std::cout << "\nGoodput rises with fan-in until the buffer saturates, then the\n"
                 "retransmission timeouts flatten (or collapse) it — and the\n"
                 "multi-server model replay tracks the original system's cliff.\n";
    return 0;
}
