// Server provisioning study (paper Section 5, "Applicability"):
// "An obvious case of the opportunities this methodology offers is
// evaluating different server configurations without access to real DC
// application source-code."
//
// Train KOOZA once on traces from the current deployment, then replay the
// same synthetic workload against candidate server configurations —
// faster disk, more cores, faster NIC, more memory banks — and compare
// predicted mean/p99 latency. No application code, no re-deployment: the
// model carries the workload.
//
// Usage: server_provisioning [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/trainer.hpp"
#include "gfs/cluster.hpp"
#include "hw/power.hpp"
#include "stats/descriptive.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;

struct Candidate {
    std::string name;
    core::ReplayConfig cfg;
};

void report(const std::string& name, const core::ReplayResult& res) {
    const auto s = stats::summarize(res.latencies);
    // Power/energy estimate from the replay's mean utilizations — the
    // paper's Section 5 "performance and power model" use case.
    hw::PowerModel power;
    const double watts =
        power.power(res.mean_cpu_utilization, res.mean_disk_utilization);
    const double joules = power.energy(res.duration, res.mean_cpu_utilization,
                                       res.mean_disk_utilization);
    std::cout << "  " << std::left << std::setw(28) << name << " mean "
              << std::setw(10) << (std::to_string(s.mean * 1e3) + " ms").substr(0, 9)
              << " p99 " << std::setw(10)
              << (std::to_string(s.p99 * 1e3) + " ms").substr(0, 9) << " power "
              << std::setw(7) << (std::to_string(watts) + " W").substr(0, 6)
              << " energy " << joules / 1e3 << " kJ\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
    std::cout << "Server provisioning with a trained KOOZA model (seed=" << seed
              << ")\n\n";

    // 1. Capture traces from the "current" deployment under an OLTP load.
    gfs::GfsConfig baseline;
    gfs::Cluster cluster(baseline);
    sim::Rng rng(seed);
    workloads::OltpProfile profile({.count = 1500, .base_rate = 30.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    const auto traces = cluster.traces();
    std::cout << "captured: " << traces.summary() << "\n";

    // 2. Train once.
    const auto model = core::Trainer({.workload_name = "oltp"}).train(traces);
    std::cout << "trained:  " << model.parameter_count() << " parameters, arrivals "
              << model.arrivals().describe() << "\n\n";

    // 3. One synthetic workload, replayed on every candidate config.
    sim::Rng gen_rng(seed + 1);
    const auto synthetic = core::Generator(model).generate(1500, gen_rng);

    auto base_cfg = core::ReplayConfig{};
    base_cfg.disk = baseline.disk;
    base_cfg.cpu = baseline.cpu;
    base_cfg.memory = baseline.memory;
    base_cfg.net = baseline.net;
    base_cfg.cpu_verify_fraction = model.cpu_verify_fraction();

    std::vector<Candidate> candidates;
    candidates.push_back({"baseline (7.2k HDD, 2 cores)", base_cfg});
    {
        auto c = base_cfg;  // SSD-like: no seek, fast transfer
        c.disk.min_seek = 50e-6;
        c.disk.max_seek = 100e-6;
        c.disk.transfer_rate = 500e6;
        candidates.push_back({"SSD storage", c});
    }
    {
        auto c = base_cfg;
        c.cpu.cores = 8;
        candidates.push_back({"8-core CPU", c});
    }
    {
        auto c = base_cfg;
        c.net.bandwidth = 1.25e9;  // 10 Gb/s
        candidates.push_back({"10 GbE network", c});
    }
    {
        auto c = base_cfg;
        c.memory.banks = 16;
        c.memory.bank_bandwidth = 8e9;
        candidates.push_back({"16-bank fast DRAM", c});
    }
    {
        auto c = base_cfg;  // everything upgraded
        c.disk.min_seek = 50e-6;
        c.disk.max_seek = 100e-6;
        c.disk.transfer_rate = 500e6;
        c.cpu.cores = 8;
        c.net.bandwidth = 1.25e9;
        candidates.push_back({"all upgrades", c});
    }

    std::cout << "predicted latency / power per server configuration:\n";
    for (const auto& cand : candidates) {
        core::Replayer replayer(cand.cfg);
        report(cand.name, replayer.replay(synthetic));
    }
    std::cout << "\nFor this disk-bound OLTP workload the SSD upgrade dominates;\n"
                 "CPU/NIC/DRAM upgrades barely move the needle — the kind of\n"
                 "provisioning answer the paper's methodology is after.\n";
    return 0;
}
