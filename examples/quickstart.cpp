// Quickstart: the full KOOZA loop in one page.
//
//  1. Run a workload on the GFS simulator (the "real system") and capture
//     traces: per-subsystem records + Dapper-style spans.
//  2. Train a KOOZA ServerModel from the traces alone.
//  3. Generate a synthetic workload from the model.
//  4. Replay it on the same device models.
//  5. Validate: request features and latency, original vs synthetic.
//
// Usage: quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/trainer.hpp"
#include "core/validator.hpp"
#include "gfs/cluster.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
    std::cout << "KOOZA quickstart (seed=" << seed << ")\n\n";

    // 1. Simulate the "real" system under a mixed read/write workload.
    kooza::gfs::GfsConfig cfg;
    kooza::gfs::Cluster cluster(cfg);
    kooza::sim::Rng rng(seed);
    kooza::workloads::MicroProfile profile({.count = 400, .arrival_rate = 25.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    const auto traces = cluster.traces();
    std::cout << "simulated GFS run: " << traces.summary() << "\n\n";

    // 2. Train the model (traces in, model out — no simulator internals).
    kooza::core::Trainer trainer({.workload_name = "micro"});
    const auto model = trainer.train(traces);
    std::cout << model.describe() << "\n";

    // 3. Generate a synthetic workload of the same length.
    kooza::core::Generator generator(model);
    kooza::sim::Rng gen_rng(seed + 1);
    const auto synthetic = generator.generate(400, gen_rng);

    // 4. Replay it against the same device models.
    kooza::core::ReplayConfig rcfg;
    rcfg.disk = cfg.disk;
    rcfg.cpu = cfg.cpu;
    rcfg.memory = cfg.memory;
    rcfg.net = cfg.net;
    rcfg.cpu_verify_fraction = model.cpu_verify_fraction();
    kooza::core::Replayer replayer(rcfg);
    const auto replayed = replayer.replay(synthetic);

    // 5. Compare: original vs synthetic features and latency.
    const auto original_features = kooza::trace::extract_features(traces);
    const auto synthetic_features = kooza::trace::extract_features(replayed.traces);
    const auto report = kooza::core::compare_features(original_features,
                                                      synthetic_features, "KOOZA");
    std::cout << "\n" << report.to_table() << "\n";
    std::cout << "max feature variation: " << report.max_feature_variation()
              << " %\nlatency variation:     " << report.latency_variation() << " %\n";
    return 0;
}
