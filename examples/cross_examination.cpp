// Cross-examination demo: the paper's central argument, in code.
//
// Train all three modeling approaches — in-breadth, in-depth, KOOZA — on
// the same trace, generate synthetic workloads from each, and compare
// against the original on both axes the paper scores:
//   * request features  (storage-size distribution distance)
//   * time dependencies (latency error under replay)
// In-breadth nails features but not timing; in-depth nails timing but not
// features; KOOZA holds both.
//
// Usage: cross_examination [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "baselines/inbreadth.hpp"
#include "baselines/indepth.hpp"
#include "core/generator.hpp"
#include "core/replayer.hpp"
#include "core/trainer.hpp"
#include "core/validator.hpp"
#include "gfs/cluster.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "trace/features.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;

std::vector<double> sizes_of(const core::SyntheticWorkload& w) {
    std::vector<double> out;
    for (const auto& r : w.requests) out.push_back(double(r.storage_bytes));
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
    std::cout << "Cross-examination of workload modeling techniques (seed=" << seed
              << ")\n\n";

    // The original system: web-search-like load (lognormal result sizes,
    // Zipf shard popularity) — within-type variance that a mean can't fake.
    gfs::GfsConfig cfg;
    gfs::Cluster cluster(cfg);
    sim::Rng rng(seed);
    workloads::WebSearchProfile profile({.count = 600, .arrival_rate = 30.0});
    profile.generate(rng).install(cluster);
    cluster.run();
    const auto ts = cluster.traces();
    const auto orig = trace::extract_features(ts);
    const auto orig_sizes = trace::column_storage_bytes(orig);
    const double orig_lat = stats::mean(trace::column_latency(orig));
    std::cout << "original: " << ts.summary() << "\n"
              << "          mean latency " << orig_lat * 1e3 << " ms\n\n";

    core::ReplayConfig rc;
    rc.disk = cfg.disk;
    rc.cpu = cfg.cpu;
    rc.memory = cfg.memory;
    rc.net = cfg.net;

    std::cout << std::left << std::setw(14) << "model" << std::setw(14)
              << "feature-KS" << std::setw(16) << "latency-err%" << std::setw(12)
              << "structure" << "verdict\n" << std::string(68, '-') << "\n";

    auto print_row = [&](const std::string& name, double ks, double lat_err,
                         bool has_structure) {
        const bool features_ok = ks < 0.1;
        // Capturing time dependencies needs both the phase order and a
        // latency prediction that holds up.
        const bool timing_ok = has_structure && lat_err < 15.0;
        std::cout << std::left << std::setw(14) << name << std::setw(14)
                  << std::setprecision(3) << ks << std::setw(16)
                  << std::setprecision(3) << lat_err << std::setw(12)
                  << (has_structure ? "learned" : "none")
                  << (features_ok && timing_ok ? "features+timing"
                      : features_ok            ? "features only"
                      : timing_ok              ? "timing only"
                                               : "neither")
                  << "\n";
    };

    // In-breadth: four subsystem models, no structure -> independent replay.
    {
        const auto model = baselines::InBreadthModel::train(ts);
        sim::Rng g(seed + 1);
        const auto w = model.generate(600, g);
        rc.cpu_verify_fraction = 0.4;
        core::Replayer rep(rc);
        const double lat =
            stats::mean(rep.replay(w, core::ReplayMode::kIndependent).latencies);
        print_row("in-breadth",
                  stats::ks_statistic_two_sample(orig_sizes, sizes_of(w)),
                  stats::variation_pct(lat, orig_lat), /*has_structure=*/false);
    }
    // In-depth: arrival process + structure + mean demands.
    {
        const auto model = baselines::InDepthModel::train(ts);
        sim::Rng g(seed + 2);
        const auto w = model.generate(600, g);
        const auto lats = model.predict_latencies(600, g);
        print_row("in-depth",
                  stats::ks_statistic_two_sample(orig_sizes, sizes_of(w)),
                  stats::variation_pct(stats::mean(lats), orig_lat),
                  /*has_structure=*/true);
    }
    // KOOZA: both.
    {
        const auto model = core::Trainer().train(ts);
        sim::Rng g(seed + 3);
        const auto w = core::Generator(model).generate(600, g);
        rc.cpu_verify_fraction = model.cpu_verify_fraction();
        core::Replayer rep(rc);
        const double lat =
            stats::mean(rep.replay(w, core::ReplayMode::kStructured).latencies);
        print_row("kooza", stats::ks_statistic_two_sample(orig_sizes, sizes_of(w)),
                  stats::variation_pct(lat, orig_lat), /*has_structure=*/true);
    }
    std::cout << "\n(feature-KS < 0.1 counts as capturing request features;\n"
                 " latency error < 15% as capturing time dependencies)\n";
    return 0;
}
