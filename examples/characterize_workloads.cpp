// Workload characterization — the pre-modeling reconnaissance the paper's
// survey prescribes (Feitelson's distribution fitting, burstiness,
// self-similarity, heavy tails; Li's pseudoperiodicity; the paper's own
// PCA feature reduction). Runs each bundled workload profile through the
// GFS simulator and prints its characterization report.
//
// Usage: characterize_workloads [seed]

#include <cstdlib>
#include <iostream>

#include "core/characterize.hpp"
#include "gfs/cluster.hpp"
#include "workloads/profiles.hpp"

namespace {

using namespace kooza;

void characterize_one(const workloads::Profile& profile, std::uint64_t seed) {
    gfs::GfsConfig cfg;
    cfg.n_chunkservers = 2;
    gfs::Cluster cluster(cfg);
    sim::Rng rng(seed);
    profile.generate(rng).install(cluster);
    cluster.run();
    const auto ts = cluster.traces();
    std::cout << "=== " << profile.name() << " ===\n"
              << core::characterize(ts).to_string()
              << core::correlation_report(ts).to_string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
    std::cout << "Characterizing the bundled workload profiles (seed=" << seed
              << ")\n\n";
    characterize_one(workloads::MicroProfile({.count = 600, .arrival_rate = 20.0}),
                     seed);
    characterize_one(workloads::OltpProfile({.count = 1500, .base_rate = 30.0}),
                     seed);
    characterize_one(
        workloads::WebSearchProfile({.count = 1000, .arrival_rate = 40.0}), seed);
    characterize_one(workloads::StreamingProfile({.sessions = 60}), seed);
    std::cout << "Expected contrasts: OLTP shows high burstiness (MMPP bursts) and\n"
                 "web-search a heavy-ish lognormal size tail, while the micro\n"
                 "profile is Poisson-clean; streaming is read-only and periodic.\n";
    return 0;
}
