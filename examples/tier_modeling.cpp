// In-depth modeling family tour: the three queueing formalisms the
// paper's survey covers, on the same 3-tier web service.
//
//  1. Plain queueing network (Liu '05): tandem multi-station queues.
//  2. Layered queueing network (Franks '09): same tiers, but callers HOLD
//     their threads during nested calls — thread pools saturate long
//     before processors, which the plain network cannot see.
//  3. SQS (Meisner '10): empirical characterization + statistically
//     sampled fleet simulation, scaling the answer to 10,000 servers.
//
// Usage: tier_modeling [seed]

#include <cstdlib>
#include <iostream>

#include "queueing/analytic.hpp"
#include "queueing/lqn.hpp"
#include "queueing/network.hpp"
#include "queueing/sqs.hpp"
#include "sim/engine.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace kooza;
using namespace kooza::queueing;

constexpr double kArrivalRate = 60.0;
constexpr std::size_t kRequests = 20000;

void plain_network(std::uint64_t seed) {
    sim::Engine eng;
    std::size_t cls = 0;
    ThreeTierConfig cfg;  // web 2x2ms, app 2x4ms, db 1x8ms
    auto net = make_three_tier(eng, cfg, cls, seed);
    PoissonArrivals arr(kArrivalRate);
    net->drive(cls, arr, kRequests);
    eng.run();
    std::cout << "1) plain queueing network (Liu-style):\n"
              << "   mean response " << stats::mean(net->response_times(cls)) * 1e3
              << " ms;  utilization web/app/db = "
              << net->station_report(0).utilization << " / "
              << net->station_report(1).utilization << " / "
              << net->station_report(2).utilization << "\n\n";
}

void layered_network(std::uint64_t seed) {
    sim::Engine eng;
    LqnModel lqn(eng, seed);
    // Same service demands, but web threads block on app, app on db.
    const auto web = lqn.add_task("web", 2, std::make_shared<stats::Exponential>(500.0));
    const auto app = lqn.add_task("app", 2, std::make_shared<stats::Exponential>(250.0));
    const auto db = lqn.add_task("db", 1, std::make_shared<stats::Exponential>(125.0));
    lqn.add_call(web, app, 1.0);
    lqn.add_call(app, db, 1.0);
    PoissonArrivals arr(kArrivalRate);
    sim::Rng rng(seed + 1);
    lqn.drive(web, arr, kRequests, rng);
    eng.run();
    std::cout << "2) layered queueing network (nested possession):\n"
              << "   mean response " << stats::mean(lqn.response_times()) * 1e3
              << " ms;  POOL utilization web/app/db = " << lqn.pool_utilization(web)
              << " / " << lqn.pool_utilization(app) << " / "
              << lqn.pool_utilization(db) << "\n"
              << "   (web's 2 threads are busy ~the whole request path — the\n"
              << "    saturation the plain network hides)\n\n";
}

void sqs_fleet(std::uint64_t seed) {
    // Characterize one server's request stream, then answer at DC scale.
    sim::Rng rng(seed + 2);
    std::vector<double> gaps(8000), services(8000);
    for (auto& g : gaps) g = rng.exponential(kArrivalRate);
    for (auto& s : services)
        s = rng.exponential(500.0) + rng.exponential(250.0) + rng.exponential(125.0);
    const auto model = SqsWorkloadModel::characterize(gaps, services);
    SqsSimulator sim({.tasks_per_server = 3000, .target_rel_ci = 0.03, .seed = seed});
    const auto res = sim.run(model, 10000);
    std::cout << "3) SQS at fleet scale:\n"
              << "   10000 servers answered by simulating " << res.servers_simulated
              << " (" << res.sampling_savings() * 100.0 << "% sampling savings);\n"
              << "   fleet mean response " << res.mean_response * 1e3 << " ms (95% CI ±"
              << res.ci_halfwidth * 1e3 << " ms), utilization " << res.utilization
              << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 19;
    std::cout << "Three in-depth formalisms on one 3-tier web service (seed=" << seed
              << ", " << kArrivalRate << " req/s)\n\n";
    plain_network(seed);
    layered_network(seed);
    sqs_fleet(seed);
    return 0;
}
